#include "sram/testbench.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "spice/elements.h"
#include "util/log.h"

namespace nvsram::sram {

using spice::NodeId;
using spice::Probe;
using spice::SourceSpec;
using spice::VSource;

CellTestbench::CellTestbench(CellKind kind, models::PaperParams pp,
                             TestbenchOptions opts)
    : kind_(kind), pp_(pp), opts_(opts) {
  const int sw_fins =
      opts_.power_switch_fins > 0 ? opts_.power_switch_fins : pp_.fins_power_switch;

  // ---- rails and lines ----
  n_vdd_ = circuit_.node("vdd");
  n_vvdd_ = circuit_.node("vvdd");
  n_pg_ = circuit_.node("pg");
  n_wl_ = circuit_.node("wl");
  n_bl_ = circuit_.node("BL");
  n_blb_ = circuit_.node("BLB");
  n_pch_ = circuit_.node("pch");
  n_wd0_ = circuit_.node("wd0");
  n_wd1_ = circuit_.node("wd1");
  n_sr_ = circuit_.node("sr");
  n_ctrl_ = circuit_.node("ctrl");

  vdd_.source = circuit_.add<VSource>("Vvdd", n_vdd_, spice::kGround,
                                      SourceSpec::dc(pp_.vdd));
  pg_.source = circuit_.add<VSource>("Vpg", n_pg_, spice::kGround,
                                     SourceSpec::dc(0.0));
  wl_.source = circuit_.add<VSource>("Vwl", n_wl_, spice::kGround,
                                     SourceSpec::dc(0.0));
  vdd_.value = pp_.vdd;

  // ---- power switch ----
  build_power_switch(circuit_, "top", pp_, n_vdd_, n_vvdd_, n_pg_, sw_fins);

  // ---- bitline periphery ----
  if (opts_.ideal_bitlines) {
    bl_.source = circuit_.add<VSource>("Vbl", n_bl_, spice::kGround,
                                       SourceSpec::dc(pp_.vdd));
    blb_.source = circuit_.add<VSource>("Vblb", n_blb_, spice::kGround,
                                        SourceSpec::dc(pp_.vdd));
    bl_.value = pp_.vdd;
    blb_.value = pp_.vdd;
  } else {
    pch_.source = circuit_.add<VSource>("Vpch", n_pch_, spice::kGround,
                                        SourceSpec::dc(0.0));
    wd0_.source = circuit_.add<VSource>("Vwd0", n_wd0_, spice::kGround,
                                        SourceSpec::dc(0.0));
    wd1_.source = circuit_.add<VSource>("Vwd1", n_wd1_, spice::kGround,
                                        SourceSpec::dc(0.0));
    circuit_.add<spice::Capacitor>("Cbl", n_bl_, spice::kGround,
                                   opts_.bitline_cap);
    circuit_.add<spice::Capacitor>("Cblb", n_blb_, spice::kGround,
                                   opts_.bitline_cap);
    spice::add_finfet(circuit_, "pch_bl", /*drain=*/n_bl_, /*gate=*/n_pch_,
                      /*source=*/n_vdd_, pp_.pmos(2));
    spice::add_finfet(circuit_, "pch_blb", n_blb_, n_pch_, n_vdd_, pp_.pmos(2));
    spice::add_finfet(circuit_, "wdrv_bl", n_bl_, n_wd0_, spice::kGround,
                      pp_.nmos(2));
    spice::add_finfet(circuit_, "wdrv_blb", n_blb_, n_wd1_, spice::kGround,
                      pp_.nmos(2));
  }

  // ---- the cell under test ----
  if (kind_ == CellKind::k6T) {
    cell_ = build_6t_cell(circuit_, "c", pp_, n_vvdd_, n_wl_, n_bl_, n_blb_,
                          opts_.fet_vary);
  } else {
    cell_ = build_nvsram_cell(circuit_, "c", pp_, n_vvdd_, n_wl_, n_bl_, n_blb_,
                              n_sr_, n_ctrl_, models::MtjState::kParallel,
                              models::MtjState::kParallel, opts_.fet_vary,
                              opts_.mtj_vary);
    sr_.source = circuit_.add<VSource>("Vsr", n_sr_, spice::kGround,
                                       SourceSpec::dc(0.0));
    ctrl_.source = circuit_.add<VSource>("Vctrl", n_ctrl_, spice::kGround,
                                         SourceSpec::dc(pp_.vctrl_normal));
    ctrl_.value = pp_.vctrl_normal;
  }

  tracks_ = {&vdd_, &pg_, &wl_};
  if (opts_.ideal_bitlines) {
    tracks_.push_back(&bl_);
    tracks_.push_back(&blb_);
  } else {
    tracks_.push_back(&pch_);
    tracks_.push_back(&wd0_);
    tracks_.push_back(&wd1_);
  }
  if (kind_ == CellKind::kNvSram) {
    tracks_.push_back(&sr_);
    tracks_.push_back(&ctrl_);
  }
}

void CellTestbench::set_level(Track& track, double t, double v, double ramp) {
  if (ramp <= 0.0) ramp = opts_.slew;
  double start = t;
  if (!track.points.empty()) {
    start = std::max(start, track.points.back().first + opts_.slew * 0.01);
  }
  if (v == track.value) return;
  track.points.emplace_back(start, track.value);
  track.points.emplace_back(start + ramp, v);
  track.value = v;
}

void CellTestbench::add_phase(const std::string& name, double t0, double t1) {
  phases_.push_back({name, t0, t1});
}

const PhaseWindow& CellTestbench::phase(const std::string& name,
                                        int occurrence) const {
  int seen = 0;
  for (const auto& ph : phases_) {
    if (ph.name == name) {
      if (seen == occurrence) return ph;
      ++seen;
    }
  }
  throw std::out_of_range("CellTestbench: no phase " + name);
}

const PhaseWindow& CellTestbench::RunResult::phase(const std::string& name,
                                                   int occurrence) const {
  int seen = 0;
  for (const auto& ph : phases) {
    if (ph.name == name) {
      if (seen == occurrence) return ph;
      ++seen;
    }
  }
  throw std::out_of_range("RunResult: no phase " + name);
}

// ---- operations --------------------------------------------------------------

void CellTestbench::op_write(bool data) {
  const double T = pp_.clock_period();
  const double t0 = t_;
  if (opts_.ideal_bitlines) {
    Track& low_side = data ? blb_ : bl_;  // write 1 => BLB low
    set_level(low_side, t0 + 0.05 * T, 0.0);
    set_level(wl_, t0 + 0.15 * T, pp_.vdd);
    set_level(wl_, t0 + 0.78 * T, 0.0);
    set_level(low_side, t0 + 0.85 * T, pp_.vdd);
  } else {
    // Release precharge, pull the low side down, pulse the word line.
    set_level(pch_, t0 + 0.02 * T, pp_.vdd);  // precharge off
    Track& low_side = data ? wd1_ : wd0_;     // write 1 => BLB low
    set_level(low_side, t0 + 0.08 * T, pp_.vdd);
    set_level(wl_, t0 + 0.15 * T, pp_.vdd);
    set_level(wl_, t0 + 0.78 * T, 0.0);
    set_level(low_side, t0 + 0.84 * T, 0.0);
    set_level(pch_, t0 + 0.88 * T, 0.0);      // precharge back on
  }
  add_phase(data ? "write1" : "write0", t0, t0 + T);
  t_ = t0 + T;
}

void CellTestbench::op_read() {
  const double T = pp_.clock_period();
  const double t0 = t_;
  if (opts_.ideal_bitlines) {
    set_level(wl_, t0 + 0.15 * T, pp_.vdd);
    set_level(wl_, t0 + 0.70 * T, 0.0);
  } else {
    set_level(pch_, t0 + 0.02 * T, pp_.vdd);
    set_level(wl_, t0 + 0.15 * T, pp_.vdd);
    set_level(wl_, t0 + 0.70 * T, 0.0);
    set_level(pch_, t0 + 0.78 * T, 0.0);
  }
  add_phase("read", t0, t0 + T);
  t_ = t0 + T;
}

void CellTestbench::op_idle(double duration) {
  add_phase("idle", t_, t_ + duration);
  t_ += duration;
}

void CellTestbench::op_sleep(double duration) {
  const double t0 = t_;
  // Lower the supply rail to the retention level (power switch stays on).
  set_level(vdd_, t0, pp_.vvdd_sleep, opts_.sleep_ramp);
  if (kind_ == CellKind::kNvSram) set_level(ctrl_, t0, pp_.vctrl_sleep);
  if (opts_.ideal_bitlines) {
    // The (ideal) bitline drivers follow the lowered rail, exactly like the
    // precharge devices do in periphery mode.
    set_level(bl_, t0, pp_.vvdd_sleep, opts_.sleep_ramp);
    set_level(blb_, t0, pp_.vvdd_sleep, opts_.sleep_ramp);
  }
  const double t_back = t0 + opts_.sleep_ramp + duration;
  set_level(vdd_, t_back, pp_.vdd, opts_.sleep_ramp);
  if (kind_ == CellKind::kNvSram) set_level(ctrl_, t_back, pp_.vctrl_normal);
  if (opts_.ideal_bitlines) {
    set_level(bl_, t_back, pp_.vdd, opts_.sleep_ramp);
    set_level(blb_, t_back, pp_.vdd, opts_.sleep_ramp);
  }
  const double t1 = t_back + opts_.sleep_ramp;
  add_phase("sleep", t0, t1);
  t_ = t1;
}

void CellTestbench::op_store() {
  if (kind_ != CellKind::kNvSram) {
    throw std::logic_error("op_store: 6T cell has no store operation");
  }
  const double step = pp_.store_pulse + opts_.store_margin;
  const double t0 = t_;
  // Step 1 (H-store): activate the PS-FinFETs with CTRL grounded.
  set_level(ctrl_, t0, 0.0);
  set_level(sr_, t0, pp_.vsr);
  add_phase("store_h", t0, t0 + step);
  // Step 2 (L-store): raise CTRL with VSR kept applied.
  set_level(ctrl_, t0 + step, pp_.vctrl_store);
  add_phase("store_l", t0 + step, t0 + 2.0 * step);
  // De-assert.
  set_level(sr_, t0 + 2.0 * step, 0.0);
  set_level(ctrl_, t0 + 2.0 * step, pp_.vctrl_normal);
  t_ = t0 + 2.0 * step + 4.0 * opts_.slew;
}

void CellTestbench::op_shutdown(double duration) {
  const double t0 = t_;
  set_level(pg_, t0, pp_.vpg_supercutoff);  // super cutoff
  if (kind_ == CellKind::kNvSram) set_level(ctrl_, t0, 0.0);
  // Release the precharge (ideal mode: discharge the bitline drivers) so the
  // gated domain is not back-fed through the access transistors.
  if (opts_.ideal_bitlines) {
    set_level(bl_, t0, 0.0);
    set_level(blb_, t0, 0.0);
  } else {
    set_level(pch_, t0, pp_.vdd);
  }
  add_phase("shutdown", t0, t0 + duration);
  t_ = t0 + duration;
}

void CellTestbench::op_restore() {
  const double t0 = t_;
  if (kind_ == CellKind::kNvSram) set_level(sr_, t0, pp_.vsr);
  // Wake the power switch; the bistable core re-develops from the MTJs.
  set_level(pg_, t0 + opts_.slew, 0.0, opts_.restore_ramp);
  const double t1 = t0 + opts_.restore_ramp + opts_.restore_settle;
  if (kind_ == CellKind::kNvSram) {
    set_level(sr_, t1, 0.0);
    set_level(ctrl_, t1, pp_.vctrl_normal);
  }
  // Re-arm the bitline periphery for subsequent accesses.
  if (opts_.ideal_bitlines) {
    set_level(bl_, t1, pp_.vdd);
    set_level(blb_, t1, pp_.vdd);
  } else {
    set_level(pch_, t1, 0.0);
  }
  const double t_end = t1 + 4.0 * opts_.slew;
  add_phase("restore", t0, t_end);
  t_ = t_end;
}

// ---- execution -----------------------------------------------------------------

lint::temporal::Timeline CellTestbench::export_timeline() const {
  using lint::temporal::SignalRole;
  lint::temporal::Timeline tl;
  tl.origin = kind_ == CellKind::k6T ? "testbench:6t" : "testbench:nvsram";
  tl.t_stop = t_ + 1e-9;  // same horizon run() uses
  tl.has_mtj = kind_ == CellKind::kNvSram;
  tl.has_fet = true;

  const std::pair<const Track*, SignalRole> roles[] = {
      {&vdd_, SignalRole::kPower},
      {&pg_, SignalRole::kPowerGate},
      {&wl_, SignalRole::kWordline},
      {&pch_, SignalRole::kPrecharge},
      {&wd0_, SignalRole::kWriteDriver},
      {&wd1_, SignalRole::kWriteDriver},
      {&bl_, SignalRole::kBitline},
      {&blb_, SignalRole::kBitline},
      {&sr_, SignalRole::kStoreEnable},
      {&ctrl_, SignalRole::kRestoreCtrl},
  };
  for (const auto& [track, role] : roles) {
    if (track->source == nullptr) continue;
    lint::temporal::SignalTimeline sig;
    sig.name = track->source->name();
    sig.role = role;
    // The points list holds the PWL corners run() would freeze in; between
    // corner pairs the level is constant, so every value change is one
    // Transition.
    sig.initial =
        track->points.empty() ? track->value : track->points.front().second;
    for (std::size_t i = 1; i < track->points.size(); ++i) {
      const auto& [ta, va] = track->points[i - 1];
      const auto& [tb, vb] = track->points[i];
      if (va != vb) sig.transitions.push_back({ta, tb, va, vb});
    }
    tl.signals.push_back(std::move(sig));
  }
  for (const PhaseWindow& ph : phases_) {
    tl.phases.push_back({ph.name, ph.t0, ph.t1});
  }
  return tl;
}

CellTestbench::RunResult CellTestbench::run() {
  if (phases_.empty()) {
    throw std::logic_error("CellTestbench::run: nothing scheduled");
  }

  // Freeze schedules into PWL sources.
  for (Track* track : tracks_) {
    if (!track->source) continue;
    if (track->points.empty()) continue;  // constant source: keep DC spec
    track->source->set_spec(SourceSpec::pwl(track->points));
  }

  // Probes: key node voltages, MTJ currents, per-source power and energy.
  std::vector<Probe> probes;
  probes.push_back(Probe::node_voltage(cell_.q, "V(Q)"));
  probes.push_back(Probe::node_voltage(cell_.qb, "V(QB)"));
  probes.push_back(Probe::node_voltage(n_vvdd_, "V(VVDD)"));
  probes.push_back(Probe::node_voltage(n_bl_, "V(BL)"));
  probes.push_back(Probe::node_voltage(n_blb_, "V(BLB)"));
  if (cell_.mtj_q) {
    probes.push_back(Probe::device_current(cell_.mtj_q, "I(MTJQ)"));
    probes.push_back(Probe::device_current(cell_.mtj_qb, "I(MTJQB)"));
  }
  std::vector<std::string> source_names;
  for (Track* track : tracks_) {
    if (!track->source) continue;
    source_names.push_back(track->source->name());
    probes.push_back(
        Probe::source_power(track->source, "P:" + track->source->name()));
    probes.push_back(
        Probe::source_energy(track->source, "E:" + track->source->name()));
  }

  spice::TranOptions topt;
  topt.t_stop = t_ + 1e-9;
  topt.dt_max = opts_.dt_max > 0.0
                    ? opts_.dt_max
                    : std::clamp(topt.t_stop / 1000.0, 50e-12, 5e-9);
  topt.method = opts_.method;
  topt.max_wall_seconds = opts_.max_wall_seconds;
  topt = topt.relaxed(opts_.relax_attempt);

  spice::TranAnalysis tran(circuit_, topt, probes);
  RunResult out{tran.run(), phases_, source_names, tran.stats()};
  return out;
}

double CellTestbench::RunResult::energy(double t0, double t1) const {
  double sum = 0.0;
  for (const auto& name : sources) {
    const std::string label = "E:" + name;
    sum += wave.value_at(label, t1) - wave.value_at(label, t0);
  }
  return sum;
}

double CellTestbench::RunResult::average_power(double t0, double t1) const {
  if (t1 <= t0) return 0.0;
  return energy(t0, t1) / (t1 - t0);
}

// ---- DC helpers ------------------------------------------------------------------

CellTestbench::BiasSet CellTestbench::bias_normal() const {
  BiasSet b;
  b.vdd = pp_.vdd;
  b.ctrl = kind_ == CellKind::kNvSram ? pp_.vctrl_normal : 0.0;
  return b;
}

CellTestbench::BiasSet CellTestbench::bias_sleep() const {
  BiasSet b;
  b.vdd = pp_.vvdd_sleep;
  b.bl = pp_.vvdd_sleep;   // bitlines are precharged from the lowered rail
  b.blb = pp_.vvdd_sleep;
  b.ctrl = kind_ == CellKind::kNvSram ? pp_.vctrl_sleep : 0.0;
  return b;
}

CellTestbench::BiasSet CellTestbench::bias_shutdown() const {
  BiasSet b;
  b.vdd = pp_.vdd;
  b.pg = pp_.vpg_supercutoff;
  b.ctrl = 0.0;
  // Bitlines are discharged in a gated domain (otherwise access-FET leakage
  // from the precharged bitlines dominates the "off" power).
  b.bl = 0.0;
  b.blb = 0.0;
  b.pch = pp_.vdd;  // precharge released
  return b;
}

CellTestbench::BiasSet CellTestbench::bias_store_h() const {
  BiasSet b = bias_normal();
  b.sr = pp_.vsr;
  b.ctrl = 0.0;
  return b;
}

CellTestbench::BiasSet CellTestbench::bias_store_l() const {
  BiasSet b = bias_normal();
  b.sr = pp_.vsr;
  b.ctrl = pp_.vctrl_store;
  return b;
}

void CellTestbench::apply_bias(const BiasSet& bias) {
  vdd_.source->set_spec(SourceSpec::dc(bias.vdd));
  pg_.source->set_spec(SourceSpec::dc(bias.pg));
  wl_.source->set_spec(SourceSpec::dc(bias.wl));
  if (opts_.ideal_bitlines) {
    bl_.source->set_spec(SourceSpec::dc(bias.bl));
    blb_.source->set_spec(SourceSpec::dc(bias.blb));
  } else {
    pch_.source->set_spec(SourceSpec::dc(bias.pch));
    wd0_.source->set_spec(SourceSpec::dc(bias.wd0));
    wd1_.source->set_spec(SourceSpec::dc(bias.wd1));
  }
  if (kind_ == CellKind::kNvSram) {
    sr_.source->set_spec(SourceSpec::dc(bias.sr));
    ctrl_.source->set_spec(SourceSpec::dc(bias.ctrl));
  }
}

linalg::Vector CellTestbench::dc_guess(const BiasSet& bias, bool data) const {
  const spice::MnaLayout layout = circuit_.build_layout();
  linalg::Vector x(layout.unknown_count(), 0.0);
  auto set = [&](NodeId n, double v) {
    if (n != spice::kGround) x[layout.node_index(n)] = v;
  };
  const bool gated_off = bias.pg > bias.vdd - 0.2;
  const double vv = gated_off ? 0.0 : bias.vdd;
  set(n_vdd_, bias.vdd);
  set(n_pg_, bias.pg);
  set(n_vvdd_, vv);
  set(n_wl_, bias.wl);
  if (opts_.ideal_bitlines) {
    set(n_bl_, bias.bl);
    set(n_blb_, bias.blb);
  } else {
    set(n_pch_, bias.pch);
    set(n_wd0_, bias.wd0);
    set(n_wd1_, bias.wd1);
    set(n_bl_, bias.wd0 > 0.5 ? 0.0 : bias.vdd);
    set(n_blb_, bias.wd1 > 0.5 ? 0.0 : bias.vdd);
  }
  set(cell_.q, data ? vv : 0.0);
  set(cell_.qb, data ? 0.0 : vv);
  if (kind_ == CellKind::kNvSram) {
    set(n_sr_, bias.sr);
    set(n_ctrl_, bias.ctrl);
    set(circuit_.find_node("c.YQ"), bias.ctrl);
    set(circuit_.find_node("c.YQB"), bias.ctrl);
  }
  return x;
}

std::optional<spice::DCSolution> CellTestbench::solve_dc(
    const BiasSet& bias, bool data, std::optional<models::MtjState> force_q,
    std::optional<models::MtjState> force_qb) {
  apply_bias(bias);
  if (cell_.mtj_q) {
    // Default: post-store configuration (H node's MTJ AP, L node's P).
    cell_.mtj_q->force_state(force_q.value_or(data ? models::MtjState::kAntiparallel
                                                   : models::MtjState::kParallel));
    cell_.mtj_qb->force_state(force_qb.value_or(
        data ? models::MtjState::kParallel : models::MtjState::kAntiparallel));
  }
  const linalg::Vector guess = dc_guess(bias, data);
  spice::DCOptions dopt;
  dopt.max_wall_seconds = opts_.max_wall_seconds;
  dopt.newton = dopt.newton.relaxed(opts_.relax_attempt);
  spice::DCAnalysis dc(circuit_, dopt);
  auto sol = dc.solve(&guess);
  last_dc_diag_ = dc.last_diagnostics();
  return sol;
}

double CellTestbench::static_power(StaticMode mode, bool data) {
  BiasSet bias;
  switch (mode) {
    case StaticMode::kNormal: bias = bias_normal(); break;
    case StaticMode::kSleep: bias = bias_sleep(); break;
    case StaticMode::kShutdown: bias = bias_shutdown(); break;
  }
  auto sol = solve_dc(bias, data);
  if (!sol) {
    throw spice::SolverError("CellTestbench::static_power: DC failed",
                             last_dc_diag_);
  }
  double total = 0.0;
  for (Track* track : tracks_) {
    if (!track->source) continue;
    total += track->source->delivered_power(sol->view(), 0.0);
  }
  return total;
}

std::vector<double> CellTestbench::static_power_lanes(
    const std::vector<CellTestbench*>& tbs,
    const std::vector<std::pair<StaticMode, bool>>& corners) {
  if (tbs.size() != corners.size()) {
    throw std::invalid_argument(
        "static_power_lanes: one testbench per corner required");
  }
  const std::size_t k = tbs.size();
  // Per-lane setup mirrors solve_dc() exactly: bias, forced MTJ states,
  // and the pure dc_guess — so each lane's starting state matches what the
  // scalar call would see on its own testbench.
  std::vector<linalg::Vector> guesses(k);
  std::vector<const linalg::Vector*> guess_ptrs(k);
  std::vector<spice::Circuit*> circuits(k);
  for (std::size_t l = 0; l < k; ++l) {
    CellTestbench& tb = *tbs[l];
    BiasSet bias;
    switch (corners[l].first) {
      case StaticMode::kNormal: bias = tb.bias_normal(); break;
      case StaticMode::kSleep: bias = tb.bias_sleep(); break;
      case StaticMode::kShutdown: bias = tb.bias_shutdown(); break;
    }
    const bool data = corners[l].second;
    tb.apply_bias(bias);
    if (tb.cell_.mtj_q) {
      tb.cell_.mtj_q->force_state(data ? models::MtjState::kAntiparallel
                                       : models::MtjState::kParallel);
      tb.cell_.mtj_qb->force_state(data ? models::MtjState::kParallel
                                        : models::MtjState::kAntiparallel);
    }
    guesses[l] = tb.dc_guess(bias, data);
    guess_ptrs[l] = &guesses[l];
    circuits[l] = &tb.circuit_;
  }

  spice::DCOptions dopt;
  dopt.max_wall_seconds = tbs[0]->opts_.max_wall_seconds;
  dopt.newton = dopt.newton.relaxed(tbs[0]->opts_.relax_attempt);
  const auto sols = spice::solve_dc_lanes(circuits, dopt, &guess_ptrs);

  std::vector<double> out(k, 0.0);
  for (std::size_t l = 0; l < k; ++l) {
    if (!sols[l]) {
      throw spice::SolverError("CellTestbench::static_power_lanes: DC failed "
                               "at lane " + std::to_string(l),
                               spice::SolveDiagnostics{});
    }
    for (Track* track : tbs[l]->tracks_) {
      if (!track->source) continue;
      out[l] += track->source->delivered_power(sols[l]->view(), 0.0);
    }
  }
  return out;
}

double CellTestbench::vvdd_at(const spice::DCSolution& sol) const {
  return sol.node_voltage(n_vvdd_);
}

}  // namespace nvsram::sram
