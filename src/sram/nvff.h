// Nonvolatile flip-flop (NV-FF) on the pseudo-spin-FinFET architecture.
//
// The paper's NVPG architecture covers "NV-SRAM and NV-FF" circuits (its
// refs [5], [6]); this module builds the flip-flop companion: a standard
// transmission-gate master-slave D flip-flop whose SLAVE latch carries the
// same two PS-FinFET + MTJ retention branches as the NV-SRAM cell.
//
//   clk = 1 : master transparent, slave holds   (retention-capable state)
//   clk = 0 : master holds, slave transparent   (Q updates: falling edge FF)
//
// Store/restore work exactly like the cell: assert SR with the slave in
// hold, run the two-step CIMS store, gate the domain off, and on wake-up
// the MTJ resistance asymmetry regenerates the slave latch.
#pragma once

#include "models/paper_params.h"
#include "spice/circuit.h"
#include "spice/mtj_element.h"
#include "sram/cell.h"
#include "sram/testbench.h"

namespace nvsram::sram {

struct NvffHandles {
  spice::NodeId d = spice::kGround;    // data input
  spice::NodeId clk = spice::kGround;  // clock (clkb generated internally)
  spice::NodeId q = spice::kGround;    // output
  spice::NodeId qb = spice::kGround;   // complement (slave internal node)
  spice::NodeId vvdd = spice::kGround;
  spice::NodeId sr = spice::kGround;
  spice::NodeId ctrl = spice::kGround;
  spice::MTJElement* mtj_q = nullptr;   // on the Q side of the slave latch
  spice::MTJElement* mtj_qb = nullptr;  // on the complement side
};

// Transmission gate between a and b: conducts when c = 1 (cb = 0).
void build_transmission_gate(spice::Circuit& ckt, const std::string& name,
                             const models::PaperParams& pp, spice::NodeId a,
                             spice::NodeId b, spice::NodeId c, spice::NodeId cb);

// Builds the NV-FF; `nonvolatile = false` builds the plain volatile D-FF
// baseline (for energy comparisons).
NvffHandles build_nvff(spice::Circuit& ckt, const std::string& prefix,
                       const models::PaperParams& pp, spice::NodeId d,
                       spice::NodeId clk, spice::NodeId vvdd, spice::NodeId sr,
                       spice::NodeId ctrl, bool nonvolatile = true);

// Scripted NV-FF testbench (mirrors CellTestbench).
class NvffTestbench {
 public:
  explicit NvffTestbench(models::PaperParams pp, bool nonvolatile = true);

  spice::Circuit& circuit() { return circuit_; }
  const NvffHandles& ff() const { return handles_; }

  // ---- schedule ----
  // One full clock cycle latching `data` (captures on clk = 1, propagates
  // to Q on the falling edge at the cycle's midpoint).
  void op_clock_data(bool data);
  void op_hold(double duration);  // clk = 1: slave holds (store-safe state)
  void op_store();
  void op_shutdown(double duration);
  void op_restore();
  double now() const { return t_; }

  struct Result {
    spice::Waveform wave;
    std::vector<PhaseWindow> phases;
    std::vector<std::string> sources;
    double energy(double t0, double t1) const;
    double energy(const PhaseWindow& ph) const { return energy(ph.t0, ph.t1); }
    const PhaseWindow& phase(const std::string& name, int occurrence = 0) const;
  };
  Result run();

  spice::MTJElement* mtj_q() const { return handles_.mtj_q; }
  spice::MTJElement* mtj_qb() const { return handles_.mtj_qb; }

 private:
  struct Track {
    spice::VSource* source = nullptr;
    std::vector<std::pair<double, double>> points;
    double value = 0.0;
  };
  void set_level(Track& track, double t, double v, double ramp = 0.0);
  void add_phase(const std::string& name, double t0, double t1);

  models::PaperParams pp_;
  bool nonvolatile_;
  spice::Circuit circuit_;
  NvffHandles handles_;
  spice::NodeId n_vdd_, n_pg_;

  Track vdd_, pg_, d_, clk_, sr_, ctrl_;
  std::vector<Track*> tracks_;
  double t_ = 0.0;
  std::vector<PhaseWindow> phases_;
  double slew_ = 25e-12;
};

// Characterized NV-FF energetics feeding a register-bank BET estimate.
struct NvffEnergetics {
  double e_clock = 0.0;          // energy of one clocked data cycle (J)
  double p_static_hold = 0.0;    // W, clk high, data held
  double p_static_shutdown = 0.0;
  double e_store = 0.0;
  double e_restore = 0.0;
  double t_store = 0.0;
  double t_restore = 0.0;
  bool store_verified = false;
  bool restore_verified = false;
};

NvffEnergetics characterize_nvff(const models::PaperParams& pp);

}  // namespace nvsram::sram
