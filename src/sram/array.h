// Multi-cell NV-SRAM array netlists (a power domain).
//
// An array is N word rows x M bit columns.  Bit lines are shared down a
// column, word lines across a row; each row has its own header power switch
// and SR/CTRL lines (the paper's per-word-line power management), so store /
// restore can proceed row by row while other rows stay in normal mode or
// shutdown.
//
// Arrays are used by the integration tests to validate the per-cell energy
// composition of core::EnergyModel against a true multi-cell simulation,
// and by the row-sequencing testbench below.
#pragma once

#include <string>
#include <vector>

#include "models/paper_params.h"
#include "spice/circuit.h"
#include "spice/elements.h"
#include "spice/tran.h"
#include "sram/cell.h"
#include "sram/testbench.h"

namespace nvsram::sram {

struct ArrayOptions {
  int rows = 2;
  int cols = 2;
  bool nonvolatile = true;
  int power_switch_fins_per_cell = 0;  // 0 => PaperParams value
  double bitline_cap = 4e-15;
  double slew = 25e-12;
};

// Handles of a built array.
struct ArrayHandles {
  int rows = 0;
  int cols = 0;
  std::vector<std::vector<CellHandles>> cells;  // [row][col]
  std::vector<spice::NodeId> wordlines;         // per row
  std::vector<spice::NodeId> vvdd;              // per row
  std::vector<spice::NodeId> sr;                // per row (NV only)
  std::vector<spice::NodeId> ctrl;              // per row (NV only)
  std::vector<spice::NodeId> bl;                // per column
  std::vector<spice::NodeId> blb;               // per column
  spice::NodeId vdd = spice::kGround;
  std::vector<spice::NodeId> pg;                // per row
};

// Builds the array into `ckt`; one header switch per row sized
// `fins_per_cell * cols` fins, matching the paper's per-word-line gating.
ArrayHandles build_array(spice::Circuit& ckt, const std::string& prefix,
                         const models::PaperParams& pp, const ArrayOptions& opts);

// Scripted testbench over a small array: per-row drivers, shared bitline
// drivers; same scheduling idea as CellTestbench but row-addressed.
class ArrayTestbench {
 public:
  ArrayTestbench(models::PaperParams pp, ArrayOptions opts);

  spice::Circuit& circuit() { return circuit_; }
  const ArrayHandles& array() const { return handles_; }
  int rows() const { return opts_.rows; }
  int cols() const { return opts_.cols; }

  // ---- schedule (row-addressed ops) ----
  // Writes `pattern` into the row (bit c = pattern value for column c).
  void op_write_row(int row, const std::vector<bool>& pattern);
  void op_read_row(int row);
  void op_idle(double duration);
  // Row-sequential store of every row (two CIMS steps per row).
  void op_store_all_rows();
  // Gates every row off for `duration`.
  void op_shutdown_all(double duration);
  // Row-sequential restore of every row.
  void op_restore_all_rows();
  double now() const { return t_; }

  struct Result {
    spice::Waveform wave;
    std::vector<PhaseWindow> phases;
    std::vector<std::string> sources;
    double energy(double t0, double t1) const;
    double total_energy() const;
    const PhaseWindow& phase(const std::string& name, int occurrence = 0) const;
  };
  Result run();

  // Cell voltage probe labels used in the waveform: "Q[r][c]".
  static std::string q_label(int r, int c);

  // MTJ element of a cell (for state checks).
  spice::MTJElement* mtj_q(int r, int c) { return handles_.cells[r][c].mtj_q; }
  spice::MTJElement* mtj_qb(int r, int c) { return handles_.cells[r][c].mtj_qb; }

 private:
  struct Track {
    spice::VSource* source = nullptr;
    std::vector<std::pair<double, double>> points;
    double value = 0.0;
  };
  void set_level(Track& track, double t, double v, double ramp = 0.0);
  void add_phase(const std::string& name, double t0, double t1);
  void store_row(int row);
  void restore_row(int row);

  models::PaperParams pp_;
  ArrayOptions opts_;
  spice::Circuit circuit_;
  ArrayHandles handles_;

  Track vdd_;
  std::vector<Track> wl_, pg_, sr_, ctrl_;  // per row
  std::vector<Track> bl_, blb_;             // per column (ideal drivers)
  std::vector<Track*> all_tracks_;

  double t_ = 0.0;
  std::vector<PhaseWindow> phases_;
};

}  // namespace nvsram::sram
