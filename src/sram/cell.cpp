#include "sram/cell.h"

namespace nvsram::sram {

using spice::Circuit;
using spice::NodeId;
using spice::add_finfet;

namespace {

// Applies the optional perturbation hook to nominal FET parameters.
models::FinFETParams varied(const FetVary& vary, const std::string& name,
                            models::FinFETParams params) {
  if (vary) vary(name, params);
  return params;
}

models::MTJParams varied(const MtjVary& vary, const std::string& name,
                         models::MTJParams params) {
  if (vary) vary(name, params);
  return params;
}

}  // namespace

CellHandles build_6t_cell(Circuit& ckt, const std::string& prefix,
                          const models::PaperParams& pp, NodeId vvdd, NodeId wl,
                          NodeId bl, NodeId blb, const FetVary& fet_vary) {
  CellHandles h;
  h.q = ckt.node(prefix + ".Q");
  h.qb = ckt.node(prefix + ".QB");
  h.bl = bl;
  h.blb = blb;
  h.wl = wl;
  h.vvdd = vvdd;

  // Inverter driving Q (input QB): PMOS load + NMOS driver.
  add_finfet(ckt, prefix + ".pu_q", /*drain=*/h.q, /*gate=*/h.qb,
             /*source=*/vvdd,
             varied(fet_vary, prefix + ".pu_q", pp.pmos(pp.fins_load)));
  add_finfet(ckt, prefix + ".pd_q", /*drain=*/h.q, /*gate=*/h.qb,
             /*source=*/spice::kGround,
             varied(fet_vary, prefix + ".pd_q", pp.nmos(pp.fins_driver)));
  // Inverter driving QB (input Q).
  add_finfet(ckt, prefix + ".pu_qb", h.qb, h.q, vvdd,
             varied(fet_vary, prefix + ".pu_qb", pp.pmos(pp.fins_load)));
  add_finfet(ckt, prefix + ".pd_qb", h.qb, h.q, spice::kGround,
             varied(fet_vary, prefix + ".pd_qb", pp.nmos(pp.fins_driver)));
  // Access transistors.
  add_finfet(ckt, prefix + ".ax_q", /*drain=*/bl, /*gate=*/wl, /*source=*/h.q,
             varied(fet_vary, prefix + ".ax_q", pp.nmos(pp.fins_access)));
  add_finfet(ckt, prefix + ".ax_qb", blb, wl, h.qb,
             varied(fet_vary, prefix + ".ax_qb", pp.nmos(pp.fins_access)));
  return h;
}

CellHandles build_nvsram_cell(Circuit& ckt, const std::string& prefix,
                              const models::PaperParams& pp, NodeId vvdd,
                              NodeId wl, NodeId bl, NodeId blb, NodeId sr,
                              NodeId ctrl, models::MtjState init_q,
                              models::MtjState init_qb, const FetVary& fet_vary,
                              const MtjVary& mtj_vary) {
  CellHandles h = build_6t_cell(ckt, prefix, pp, vvdd, wl, bl, blb, fet_vary);
  h.sr = sr;
  h.ctrl = ctrl;
  h.nonvolatile = true;

  // PS-FinFET branch on the Q side:
  //     Q -- nFET(gate = SR) -- Y -- MTJ -- CTRL
  // The FET sits next to the storage node so both store steps see full gate
  // drive (H-store: source near CTRL potential; L-store: source is the
  // grounded storage node).  MTJ free terminal faces Y, pinned faces CTRL:
  //   * H-store current Q -> Y -> MTJ -> CTRL enters the free terminal
  //     (negative in the model convention)  =>  P -> AP.
  //   * L-store current CTRL -> MTJ -> Y -> Q enters the pinned terminal
  //     (positive)  =>  AP -> P.
  const NodeId yq = ckt.node(prefix + ".YQ");
  add_finfet(ckt, prefix + ".ps_q", /*drain=*/h.q, /*gate=*/sr, /*source=*/yq,
             varied(fet_vary, prefix + ".ps_q", pp.nmos(pp.fins_ps)));
  h.mtj_q = ckt.add<spice::MTJElement>(
      prefix + ".mtj_q", /*pinned=*/ctrl, /*free=*/yq,
      varied(mtj_vary, prefix + ".mtj_q", pp.mtj), init_q);

  const NodeId yqb = ckt.node(prefix + ".YQB");
  add_finfet(ckt, prefix + ".ps_qb", h.qb, sr, yqb,
             varied(fet_vary, prefix + ".ps_qb", pp.nmos(pp.fins_ps)));
  h.mtj_qb = ckt.add<spice::MTJElement>(
      prefix + ".mtj_qb", ctrl, yqb,
      varied(mtj_vary, prefix + ".mtj_qb", pp.mtj), init_qb);
  return h;
}

spice::FinFETElement* build_power_switch(Circuit& ckt, const std::string& prefix,
                                         const models::PaperParams& pp,
                                         NodeId vdd, NodeId vvdd, NodeId pg,
                                         int fins) {
  // Header pFET: source at VDD, drain at virtual VDD, gate on the PG line.
  // High-Vth device (MTCMOS) so the shutdown mode actually cuts leakage.
  models::FinFETParams sw = pp.pmos(fins);
  sw.vth0 = pp.power_switch_vth;
  return add_finfet(ckt, prefix + ".psw", /*drain=*/vvdd, /*gate=*/pg,
                    /*source=*/vdd, sw);
}

}  // namespace nvsram::sram
