#include "sram/characterize.h"

#include <cmath>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "lint/dataflow/check.h"
#include "lint/power/check.h"
#include "lint/report.h"
#include "lint/temporal/protocol.h"
#include "lint/temporal/units_check.h"
#include "sram/characterize_cache.h"
#include "util/breadcrumb.h"
#include "util/units.h"
#include "util/watchdog.h"

namespace nvsram::sram {

namespace {

// Static protocol gate: every scheduled script is linted before its transient
// runs.  A schedule that violates the power-gating protocol (store too short,
// access before restore, sub-retention sleep) would still solve and produce
// energies that *look* valid — fail loudly instead, with zero solver time
// spent.  Parameter dimension/range checks ride along so a unit-mismatched
// PaperParams (e.g. J_C entered in A/cm^2) is rejected here too.
void gate_schedule(const CellTestbench& tb, const models::PaperParams& pp,
                   CellKind kind, int relax_attempt) {
  const auto opt = lint::temporal::TemporalOptions::from_paper(pp);
  const auto tl = tb.export_timeline();
  lint::LintReport report;
  for (auto& d : lint::temporal::check_timeline(tl, opt)) {
    report.add(std::move(d));
  }
  for (auto& d : lint::temporal::check_timeline_units(tl)) {
    report.add(std::move(d));
  }
  for (auto& d : lint::temporal::check_paper_params(pp)) {
    report.add(std::move(d));
  }
  // Power-intent pass: extract the domain behind the header switch and hold
  // the schedule against its off windows (word-line asserts into the
  // collapsed rail, sneak paths around the PS device).
  for (auto& d : lint::power::check_power(tb.circuit(), tl, nullptr, {})) {
    report.add(std::move(d));
  }
  // Retention dataflow: prove no generation is lost, staled, or redundantly
  // stored across the schedule.  The redundant-store advisory quantifies
  // the waste from a *peeked* cache entry only — computing it here would
  // recurse (characterize -> gate_schedule -> characterize).
  lint::dataflow::DataflowOptions dopt =
      lint::dataflow::DataflowOptions::from_paper(pp);
  if (auto cached = characterize_cache_peek(pp, kind, relax_attempt)) {
    dopt.store_energy_hint = cached->e_store;
  }
  for (auto& d :
       lint::dataflow::check_dataflow(tl, dopt, &tb.circuit(), nullptr)) {
    report.add(std::move(d));
  }
  if (report.has_errors()) throw lint::LintError(std::move(report));
}

// Lane width for the static-power corner solves.  NVSRAM_SWEEP_BATCH > 1
// (the sweep runner's lane-group knob) routes the five independent corner
// DC solves through the lockstep batched driver (spice::solve_dc_lanes) on
// per-corner testbench clones; the characterized values are bit-identical
// either way, so the knob only changes how the work is carried.  Malformed
// values fall back to scalar here — the runner layer is where a typo'd
// drill variable fails loudly (RunnerOptions::apply_env).
int static_corner_lanes() {
  const char* v = std::getenv("NVSRAM_SWEEP_BATCH");
  if (!v) return 1;
  char* end = nullptr;
  const long n = std::strtol(v, &end, 10);
  if (end == v || *end != '\0' || n < 1 || n > 64) return 1;
  return static_cast<int>(n);
}

}  // namespace

std::string CellEnergetics::describe() const {
  std::ostringstream os;
  os << "  T_clk      = " << util::si_format(t_clk, "s") << "\n"
     << "  E_read     = " << util::si_format(e_read, "J") << "\n"
     << "  E_write    = " << util::si_format(e_write, "J") << "\n"
     << "  P_normal   = " << util::si_format(p_static_normal, "W") << "\n"
     << "  P_sleep    = " << util::si_format(p_static_sleep, "W") << "\n"
     << "  P_shutdown = " << util::si_format(p_static_shutdown, "W") << "\n";
  if (t_store > 0.0) {
    os << "  E_store    = " << util::si_format(e_store, "J") << " over "
       << util::si_format(t_store, "s")
       << (store_verified ? "  [verified]" : "  [NOT VERIFIED]") << "\n"
       << "  E_restore  = " << util::si_format(e_restore, "J") << " over "
       << util::si_format(t_restore, "s")
       << (restore_verified ? "  [verified]" : "  [NOT VERIFIED]") << "\n";
  }
  if (solver_recoveries() > 0) {
    os << "  recoveries = " << solver_recoveries() << " (gmin "
       << gmin_recoveries << ", source " << source_recoveries << ")\n";
  }
  return os.str();
}

CellCharacterizer::CellCharacterizer(models::PaperParams pp,
                                     double max_wall_seconds,
                                     int relax_attempt)
    : pp_(pp),
      max_wall_seconds_(max_wall_seconds),
      relax_attempt_(relax_attempt) {}

CellEnergetics CellCharacterizer::characterize(CellKind kind) const {
  // One wall-clock budget spans the whole characterization.  Each testbench
  // analysis below is handed whatever budget remains, so a stuck solve in
  // any step throws util::WatchdogError instead of outliving the phase.
  const util::Deadline phase(max_wall_seconds_);
  // Each step names itself in the crash breadcrumb, so a sweep worker that
  // dies mid-characterization tells its supervisor exactly which phase
  // (op script / sleep / static powers) took it down — a no-op outside
  // process-isolated sweeps (see util/breadcrumb.h).
  auto remaining = [&phase](const char* step) {
    util::breadcrumb::set_phase(step);
    phase.check(step);
    return phase.remaining_seconds();
  };

  CellEnergetics out;
  out.t_clk = pp_.clock_period();

  // ---- transient script: writes, reads, (store, shutdown, restore) ----
  CellTestbench tb(
      kind, pp_,
      TestbenchOptions{.max_wall_seconds = remaining("characterize: op script"),
                       .relax_attempt = relax_attempt_});
  tb.op_write(true);
  tb.op_write(false);
  tb.op_write(true);   // measured write (steady-state bitline toggling)
  tb.op_read();        // warm-up read
  tb.op_read();        // measured read
  tb.op_idle(2e-9);
  if (kind == CellKind::kNvSram) {
    tb.op_store();
    // Long enough for virtual VDD to collapse fully so the restore genuinely
    // recovers data from the MTJs rather than from residual node charge.
    tb.op_shutdown(3e-6);
    tb.op_restore();
    tb.op_idle(2e-9);
  }
  gate_schedule(tb, pp_, kind, relax_attempt_);
  auto res = tb.run();
  out.gmin_recoveries += res.stats.gmin_recoveries;
  out.source_recoveries += res.stats.source_recoveries;

  const auto& wr = res.phase("write1", 1);
  out.e_write = res.energy(wr);
  const auto& rd = res.phase("read", 1);
  out.e_read = res.energy(rd);

  if (kind == CellKind::kNvSram) {
    const auto& sh = res.phase("store_h");
    const auto& sl = res.phase("store_l");
    out.e_store = res.energy(sh.t0, sl.t1);
    out.t_store = sl.t1 - sh.t0;
    const auto& rs = res.phase("restore");
    out.e_restore = res.energy(rs);
    out.t_restore = rs.duration();

    // Store verification: last written data was 1 (Q high), so the Q-side
    // MTJ must be AP and the QB-side P after the store.
    out.store_verified =
        tb.mtj_q()->state() == models::MtjState::kAntiparallel &&
        tb.mtj_qb()->state() == models::MtjState::kParallel;
    // Restore verification: virtual VDD must have collapsed during the
    // shutdown and Q must come back high.
    const auto& sd = res.phase("shutdown");
    const double vv_end = res.wave.value_at("V(VVDD)", sd.t1 - 1e-9);
    const double q_final = res.wave.value_at("V(Q)", tb.now() - 0.5e-9);
    const double qb_final = res.wave.value_at("V(QB)", tb.now() - 0.5e-9);
    out.restore_verified = vv_end < 0.25 * pp_.vdd &&
                           q_final > 0.8 * pp_.vdd && qb_final < 0.2 * pp_.vdd;
  }

  // ---- sleep transition energy (separate short script) ----
  {
    CellTestbench tbs(
        kind, pp_,
        TestbenchOptions{.max_wall_seconds = remaining("characterize: sleep"),
                         .relax_attempt = relax_attempt_});
    tbs.op_write(true);
    tbs.op_idle(2e-9);
    tbs.op_sleep(60e-9);
    tbs.op_idle(2e-9);
    gate_schedule(tbs, pp_, kind, relax_attempt_);
    auto rs = tbs.run();
    out.gmin_recoveries += rs.stats.gmin_recoveries;
    out.source_recoveries += rs.stats.source_recoveries;
    const auto& slp = rs.phase("sleep");
    const double e_total = rs.energy(slp);
    // Subtract the static retention part to isolate the transition cost.
    CellTestbench tbd(
        kind, pp_,
        TestbenchOptions{.ideal_bitlines = true,
                         .max_wall_seconds = remaining("characterize: sleep"),
                         .relax_attempt = relax_attempt_});
    const double p_slp = tbd.static_power(CellTestbench::StaticMode::kSleep);
    out.e_sleep_transition = std::max(0.0, e_total - p_slp * slp.duration());
  }

  // ---- static powers (DC, ideal bitlines) ----
  // Five independent corner solves: either sequentially on one testbench,
  // or in lockstep lane groups on per-corner clones (NVSRAM_SWEEP_BATCH).
  using SM = CellTestbench::StaticMode;
  const std::vector<std::pair<SM, bool>> corners = {{SM::kNormal, true},
                                                    {SM::kNormal, false},
                                                    {SM::kSleep, true},
                                                    {SM::kSleep, false},
                                                    {SM::kShutdown, true}};
  const TestbenchOptions static_opts{
      .ideal_bitlines = true,
      .max_wall_seconds = remaining("characterize: static"),
      .relax_attempt = relax_attempt_};
  std::vector<double> p(corners.size(), 0.0);
  const std::size_t lanes =
      static_cast<std::size_t>(static_corner_lanes());
  if (lanes > 1) {
    std::vector<std::unique_ptr<CellTestbench>> tbs;
    tbs.reserve(corners.size());
    for (std::size_t i = 0; i < corners.size(); ++i) {
      tbs.push_back(std::make_unique<CellTestbench>(kind, pp_, static_opts));
    }
    for (std::size_t i = 0; i < corners.size();) {
      const std::size_t count = std::min(lanes, corners.size() - i);
      std::vector<CellTestbench*> group;
      std::vector<std::pair<SM, bool>> group_corners;
      for (std::size_t j = 0; j < count; ++j) {
        group.push_back(tbs[i + j].get());
        group_corners.push_back(corners[i + j]);
      }
      const auto powers =
          CellTestbench::static_power_lanes(group, group_corners);
      for (std::size_t j = 0; j < count; ++j) p[i + j] = powers[j];
      i += count;
    }
  } else {
    CellTestbench tbd(kind, pp_, static_opts);
    for (std::size_t i = 0; i < corners.size(); ++i) {
      p[i] = tbd.static_power(corners[i].first, corners[i].second);
    }
  }
  out.p_static_normal = 0.5 * (p[0] + p[1]);
  out.p_static_sleep = 0.5 * (p[2] + p[3]);
  out.p_static_shutdown = p[4];
  return out;
}

CellCharacterizer::LeakageSweep CellCharacterizer::leakage_vs_vctrl(
    const std::vector<double>& vctrl_points) const {
  LeakageSweep sweep;

  CellTestbench tb6(CellKind::k6T, pp_, TestbenchOptions{.ideal_bitlines = true});
  sweep.current_6t =
      tb6.static_power(CellTestbench::StaticMode::kNormal) / pp_.vdd;

  CellTestbench tb(CellKind::kNvSram, pp_,
                   TestbenchOptions{.ideal_bitlines = true});
  for (double vctrl : vctrl_points) {
    auto bias = tb.bias_normal();
    bias.ctrl = vctrl;
    // Average over both held data values (the two leakage paths differ).
    double p = 0.0;
    for (bool data : {true, false}) {
      auto sol = tb.solve_dc(bias, data);
      if (!sol) {
        throw std::runtime_error("leakage_vs_vctrl: DC failed at vctrl=" +
                                 std::to_string(vctrl));
      }
      double total = 0.0;
      for (const auto& dev : tb.circuit().devices()) {
        if (auto* vs = dynamic_cast<spice::VSource*>(dev.get())) {
          total += vs->delivered_power(sol->view(), 0.0);
        }
      }
      p += 0.5 * total;
    }
    sweep.points.push_back({vctrl, p / pp_.vdd});
  }
  return sweep;
}

std::vector<std::pair<double, double>> CellCharacterizer::store_current_vs_vsr(
    const std::vector<double>& vsr_points) const {
  CellTestbench tb(CellKind::kNvSram, pp_,
                   TestbenchOptions{.ideal_bitlines = true});
  std::vector<std::pair<double, double>> out;
  for (double vsr : vsr_points) {
    auto bias = tb.bias_store_h();
    bias.sr = vsr;
    // Pre-switch state: the Q-side MTJ is still parallel while the H-store
    // current develops.
    auto sol = tb.solve_dc(bias, /*data=*/true, models::MtjState::kParallel,
                           models::MtjState::kAntiparallel);
    if (!sol) {
      throw std::runtime_error("store_current_vs_vsr: DC failed");
    }
    // The P->AP polarity is negative in the model convention; report the
    // magnitude as the paper does.
    const double i = tb.mtj_q()->current(sol->view());
    out.emplace_back(vsr, std::fabs(i));
  }
  return out;
}

std::vector<std::pair<double, double>>
CellCharacterizer::store_current_vs_vctrl(
    const std::vector<double>& vctrl_points) const {
  CellTestbench tb(CellKind::kNvSram, pp_,
                   TestbenchOptions{.ideal_bitlines = true});
  std::vector<std::pair<double, double>> out;
  for (double vctrl : vctrl_points) {
    auto bias = tb.bias_store_l();
    bias.ctrl = vctrl;
    // L-store acts on the QB-side MTJ (QB holds 0); it is antiparallel
    // before the AP->P switch, while the Q-side already completed H-store.
    auto sol = tb.solve_dc(bias, /*data=*/true, models::MtjState::kAntiparallel,
                           models::MtjState::kAntiparallel);
    if (!sol) {
      throw std::runtime_error("store_current_vs_vctrl: DC failed");
    }
    // Positive current = AP->P polarity.
    const double i = tb.mtj_qb()->current(sol->view());
    out.emplace_back(vctrl, i);
  }
  return out;
}

std::vector<CellCharacterizer::VvddPoint>
CellCharacterizer::vvdd_vs_switch_fins(const std::vector<int>& fins) const {
  std::vector<VvddPoint> out;
  for (int f : fins) {
    CellTestbench tb(
        CellKind::kNvSram, pp_,
        TestbenchOptions{.power_switch_fins = f, .ideal_bitlines = true});
    VvddPoint p;
    p.fins = f;
    auto normal = tb.solve_dc(tb.bias_normal(), true);
    auto store = tb.solve_dc(tb.bias_store_h(), true);
    if (!normal || !store) {
      throw std::runtime_error("vvdd_vs_switch_fins: DC failed");
    }
    p.vvdd_normal = tb.vvdd_at(*normal);
    p.vvdd_store = tb.vvdd_at(*store);
    out.push_back(p);
  }
  return out;
}

}  // namespace nvsram::sram
