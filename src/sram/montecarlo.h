// Monte-Carlo mismatch analysis for the NV-SRAM cell.
//
// The paper's aggressive (N_FL, N_FD) = (1,1) sizing trades stability for
// area and relies on "bias assist" to recover margin; this module quantifies
// that trade-off (an extension the paper leaves implicit).  Each sample
// draws independent per-device perturbations:
//   * FinFET Vth shift       ~ N(0, vth_sigma)      (RDF / WFV mismatch)
//   * FinFET kp relative     ~ N(0, kp_rel_sigma)   (mobility / geometry)
//   * MTJ RA relative        ~ N(0, ra_rel_sigma)   (barrier thickness)
//   * MTJ Jc relative        ~ N(0, jc_rel_sigma)   (anisotropy)
// and evaluates hold/read SNM of a mismatched inverter pair and the store
// current margins of a mismatched cell.
#pragma once

#include <random>
#include <vector>

#include "models/paper_params.h"
#include "sram/snm.h"
#include "sram/testbench.h"
#include "util/stats.h"

namespace nvsram::sram {

struct VariationSpec {
  double vth_sigma = 0.02;      // V
  double kp_rel_sigma = 0.03;   // fraction
  double ra_rel_sigma = 0.05;   // fraction
  double jc_rel_sigma = 0.05;   // fraction
  unsigned seed = 12345;
  // Rung of the shared relaxation ladder (NewtonOptions::relaxed) applied
  // to every per-sample analysis; retry callbacks pass their
  // PointContext::attempt so re-runs loosen tolerances uniformly.
  int relax_attempt = 0;
};

struct MonteCarloSummary {
  util::RunningStats stats;
  int failures = 0;   // samples below the pass threshold (or DC failures)
  int samples = 0;
  double yield() const {
    return samples == 0 ? 0.0
                        : 1.0 - static_cast<double>(failures) / samples;
  }
};

class MonteCarlo {
 public:
  MonteCarlo(models::PaperParams pp, VariationSpec spec);

  // Hold SNM of a mismatched inverter pair (V); `min_snm` sets the failure
  // threshold for yield accounting.
  MonteCarloSummary hold_snm(int samples, CellKind kind = CellKind::kNvSram,
                             double min_snm = 0.10);
  // Read SNM with the access transistor on.
  MonteCarloSummary read_snm(int samples, CellKind kind = CellKind::kNvSram,
                             double min_snm = 0.02);

  // Worst-case store overdrive min(|I_H|, I_L) / Ic of a mismatched cell at
  // the Table I biases; failure = overdrive below 1 (no switching).
  MonteCarloSummary store_margin(int samples, double min_overdrive = 1.0);

  // One draw of the FET / MTJ perturbation hooks (exposed for reuse by the
  // array tests and benches).
  FetVary draw_fet_vary();
  MtjVary draw_mtj_vary();

 private:
  models::PaperParams pp_;
  VariationSpec spec_;
  std::mt19937 rng_;
};

}  // namespace nvsram::sram
