// Process-wide memoized cell characterization.
//
// Sweeps and benches characterize the same (PaperParams, CellKind) point
// over and over — Fig. 7/8/9 all start from the identical nominal cells, and
// each characterization costs seconds of transient solving.  This cache
// memoizes CellCharacterizer::characterize() keyed on the *content* of the
// inputs:
//
//   PaperParams::fingerprint()  — every physical parameter,
//   CellKind and relax_attempt  — they change the script / tolerances,
//   TemporalOptions::from_paper(pp).fingerprint()
//                               — the temporal-lint config that gated the
//                                 schedule.  Cached energies are only valid
//                                 for the lint thresholds that admitted
//                                 them; a config change invalidates the key.
//
// The wall-clock budget is deliberately NOT part of the key: it bounds how
// long a characterization may take, not what it computes.  A run that blows
// its budget throws before the entry is marked ready, so a later call with a
// larger budget recomputes.
//
// Thread safety: one mutex guards the map, one mutex per entry serializes
// the compute, so concurrent sweep workers characterizing *different* points
// proceed in parallel while workers asking for the *same* point wait for the
// first result instead of duplicating the solve.
#pragma once

#include <cstddef>
#include <optional>

#include "sram/characterize.h"

namespace nvsram::sram {

CellEnergetics characterize_cached(const models::PaperParams& pp,
                                   CellKind kind,
                                   double max_wall_seconds = 0.0,
                                   int relax_attempt = 0);

// Non-computing lookup: the cached energetics for this key if a previous
// characterize_cached() call finished them, nullopt otherwise (including
// while another thread is mid-compute).  Never solves anything, so it is
// safe to call from inside the lint gate that characterize() itself runs —
// the data-redundant-store advisory peeks here for its energy figure
// without any recursion risk.
std::optional<CellEnergetics> characterize_cache_peek(
    const models::PaperParams& pp, CellKind kind, int relax_attempt = 0);

struct CharacterizeCacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t entries = 0;
};
CharacterizeCacheStats characterize_cache_stats();

// Drops every entry and resets the counters (tests).
void characterize_cache_clear();

}  // namespace nvsram::sram
