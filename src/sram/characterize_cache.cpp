#include "sram/characterize_cache.h"

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "lint/temporal/protocol.h"

namespace nvsram::sram {

namespace {

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  // FNV-1a over the 8 bytes of v, continuing the running hash.
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t cache_key(const models::PaperParams& pp, CellKind kind,
                        int relax_attempt) {
  std::uint64_t h = pp.fingerprint();
  h = mix(h, static_cast<std::uint64_t>(kind));
  h = mix(h, static_cast<std::uint64_t>(relax_attempt));
  h = mix(h, lint::temporal::TemporalOptions::from_paper(pp).fingerprint());
  return h;
}

struct Entry {
  std::mutex compute;
  bool ready = false;
  CellEnergetics value;
};

struct Cache {
  std::mutex m;
  // unique_ptr keeps each Entry's address stable across rehashes, so the
  // per-entry mutex can be held without the map lock.
  std::unordered_map<std::uint64_t, std::unique_ptr<Entry>> map;
  std::size_t hits = 0;
  std::size_t misses = 0;
};

Cache& cache() {
  static Cache c;
  return c;
}

}  // namespace

CellEnergetics characterize_cached(const models::PaperParams& pp,
                                   CellKind kind, double max_wall_seconds,
                                   int relax_attempt) {
  const std::uint64_t key = cache_key(pp, kind, relax_attempt);
  Cache& c = cache();

  Entry* entry = nullptr;
  {
    std::lock_guard<std::mutex> lock(c.m);
    auto& slot = c.map[key];
    if (!slot) slot = std::make_unique<Entry>();
    entry = slot.get();
  }

  std::lock_guard<std::mutex> lock(entry->compute);
  if (entry->ready) {
    std::lock_guard<std::mutex> stats(c.m);
    ++c.hits;
    return entry->value;
  }
  // Compute under the entry lock: a second thread asking for the same point
  // blocks here and finds the result ready.  If this throws (lint gate,
  // watchdog, solver), `ready` stays false and the next caller recomputes.
  entry->value = CellCharacterizer(pp, max_wall_seconds, relax_attempt)
                     .characterize(kind);
  entry->ready = true;
  {
    std::lock_guard<std::mutex> stats(c.m);
    ++c.misses;
  }
  return entry->value;
}

std::optional<CellEnergetics> characterize_cache_peek(
    const models::PaperParams& pp, CellKind kind, int relax_attempt) {
  const std::uint64_t key = cache_key(pp, kind, relax_attempt);
  Cache& c = cache();
  std::lock_guard<std::mutex> lock(c.m);
  auto it = c.map.find(key);
  if (it == c.map.end()) return std::nullopt;
  Entry* entry = it->second.get();
  // try_to_lock: if the entry is mid-compute (possibly by this very thread,
  // when the peek comes from the lint gate inside characterize()), report a
  // miss instead of blocking or recursing.
  std::unique_lock<std::mutex> el(entry->compute, std::try_to_lock);
  if (!el.owns_lock() || !entry->ready) return std::nullopt;
  return entry->value;
}

CharacterizeCacheStats characterize_cache_stats() {
  Cache& c = cache();
  std::lock_guard<std::mutex> lock(c.m);
  return {c.hits, c.misses, c.map.size()};
}

void characterize_cache_clear() {
  Cache& c = cache();
  std::lock_guard<std::mutex> lock(c.m);
  c.map.clear();
  c.hits = 0;
  c.misses = 0;
}

}  // namespace nvsram::sram
