// Static noise margin extraction via butterfly curves.
//
// The paper leans on the claim that separating the MTJs via PS-FinFETs
// preserves large normal-mode SNMs; these helpers quantify that on our
// substrate.  The SNM is computed with the standard 45-degree rotation of
// the two inverter voltage-transfer curves: the side of the largest square
// embedded in each butterfly lobe, reported as the smaller of the two lobes.
#pragma once

#include "models/paper_params.h"
#include "sram/testbench.h"

namespace nvsram::sram {

struct SnmResult {
  double snm = 0.0;        // min of the two lobes (V)
  double lobe_high = 0.0;  // square in the upper-left lobe (V)
  double lobe_low = 0.0;   // square in the lower-right lobe (V)
};

struct SnmOptions {
  int sweep_points = 121;
  double vvdd = 0.0;        // 0 => PaperParams::vdd
  bool access_on = false;   // read SNM: WL high, bitlines at VDD
  bool ps_branch_connected = false;  // NV cell with SR asserted (worst case)
  // Device mismatch hook (Monte-Carlo); device names are "pu", "pd", "ax",
  // "ps" within this inverter.
  FetVary fet_vary;
};

// VTC of the cell inverter (with optional access transistor / PS branch
// loading).  Returns (vin, vout) samples.
std::vector<std::pair<double, double>> inverter_vtc(
    const models::PaperParams& pp, CellKind kind, const SnmOptions& opts);

// SNM from two identical cross-coupled VTCs.
SnmResult compute_snm(const std::vector<std::pair<double, double>>& vtc);

// SNM of a MISMATCHED pair: inverter A drives Q from QB, inverter B drives
// QB from Q (Monte-Carlo cells).  lobe_high uses A-over-B, lobe_low the
// mirrored orientation.
SnmResult compute_snm(const std::vector<std::pair<double, double>>& vtc_a,
                      const std::vector<std::pair<double, double>>& vtc_b);

// Convenience wrappers.
SnmResult hold_snm(const models::PaperParams& pp, CellKind kind,
                   double vvdd = 0.0);
SnmResult read_snm(const models::PaperParams& pp, CellKind kind);

}  // namespace nvsram::sram
