#include "sram/nvff.h"

#include <stdexcept>

#include "spice/dc.h"
#include "spice/elements.h"
#include "spice/fet_element.h"
#include "spice/tran.h"

namespace nvsram::sram {

using spice::Circuit;
using spice::NodeId;
using spice::SourceSpec;
using spice::VSource;

void build_transmission_gate(Circuit& ckt, const std::string& name,
                             const models::PaperParams& pp, NodeId a, NodeId b,
                             NodeId c, NodeId cb) {
  spice::add_finfet(ckt, name + ".n", /*drain=*/a, /*gate=*/c, /*source=*/b,
                    pp.nmos(1));
  spice::add_finfet(ckt, name + ".p", a, cb, b, pp.pmos(1));
}

namespace {

void build_inverter(Circuit& ckt, const std::string& name,
                    const models::PaperParams& pp, NodeId in, NodeId out,
                    NodeId vvdd) {
  spice::add_finfet(ckt, name + ".pu", out, in, vvdd, pp.pmos(1));
  spice::add_finfet(ckt, name + ".pd", out, in, spice::kGround, pp.nmos(1));
}

}  // namespace

NvffHandles build_nvff(Circuit& ckt, const std::string& prefix,
                       const models::PaperParams& pp, NodeId d, NodeId clk,
                       NodeId vvdd, NodeId sr, NodeId ctrl, bool nonvolatile) {
  NvffHandles h;
  h.d = d;
  h.clk = clk;
  h.vvdd = vvdd;
  h.sr = sr;
  h.ctrl = ctrl;

  // Local inverted clock.
  const NodeId clkb = ckt.node(prefix + ".clkb");
  build_inverter(ckt, prefix + ".invc", pp, clk, clkb, vvdd);

  // ---- master latch: transparent while clk = 1 ----
  const NodeId ma = ckt.node(prefix + ".ma");
  const NodeId mb = ckt.node(prefix + ".mb");
  const NodeId mfb = ckt.node(prefix + ".mfb");
  build_transmission_gate(ckt, prefix + ".tg_in", pp, d, ma, clk, clkb);
  build_inverter(ckt, prefix + ".inv1", pp, ma, mb, vvdd);
  build_inverter(ckt, prefix + ".inv2", pp, mb, mfb, vvdd);
  // Feedback closes while clk = 0.
  build_transmission_gate(ckt, prefix + ".tg_mfb", pp, mfb, ma, clkb, clk);

  // ---- slave latch: transparent while clk = 0, holds while clk = 1 ----
  const NodeId sc = ckt.node(prefix + ".QB");  // complement node
  const NodeId q = ckt.node(prefix + ".Q");
  const NodeId sfb = ckt.node(prefix + ".sfb");
  h.q = q;
  h.qb = sc;
  build_transmission_gate(ckt, prefix + ".tg_mid", pp, mb, sc, clkb, clk);
  build_inverter(ckt, prefix + ".inv3", pp, sc, q, vvdd);
  build_inverter(ckt, prefix + ".inv4", pp, q, sfb, vvdd);
  // Feedback closes while clk = 1 (the hold / retention state).
  build_transmission_gate(ckt, prefix + ".tg_sfb", pp, sfb, sc, clk, clkb);

  if (nonvolatile) {
    // PS-FinFET + MTJ branches on the slave's complementary nodes, exactly
    // as in the NV-SRAM cell (FET next to the latch node, MTJ to CTRL).
    const NodeId yq = ckt.node(prefix + ".YQ");
    spice::add_finfet(ckt, prefix + ".ps_q", q, sr, yq, pp.nmos(pp.fins_ps));
    h.mtj_q = ckt.add<spice::MTJElement>(prefix + ".mtj_q", ctrl, yq, pp.mtj,
                                         models::MtjState::kParallel);
    const NodeId yqb = ckt.node(prefix + ".YQB");
    spice::add_finfet(ckt, prefix + ".ps_qb", sc, sr, yqb, pp.nmos(pp.fins_ps));
    h.mtj_qb = ckt.add<spice::MTJElement>(prefix + ".mtj_qb", ctrl, yqb,
                                          pp.mtj, models::MtjState::kParallel);
  }
  return h;
}

// ---- NvffTestbench ------------------------------------------------------------

NvffTestbench::NvffTestbench(models::PaperParams pp, bool nonvolatile)
    : pp_(pp), nonvolatile_(nonvolatile) {
  n_vdd_ = circuit_.node("vdd");
  n_pg_ = circuit_.node("pg");
  const NodeId n_vvdd = circuit_.node("vvdd");
  const NodeId n_d = circuit_.node("d");
  const NodeId n_clk = circuit_.node("clk");
  const NodeId n_sr = circuit_.node("sr");
  const NodeId n_ctrl = circuit_.node("ctrl");

  vdd_.source = circuit_.add<VSource>("Vvdd", n_vdd_, spice::kGround,
                                      SourceSpec::dc(pp_.vdd));
  vdd_.value = pp_.vdd;
  pg_.source = circuit_.add<VSource>("Vpg", n_pg_, spice::kGround,
                                     SourceSpec::dc(0.0));
  d_.source = circuit_.add<VSource>("Vd", n_d, spice::kGround,
                                    SourceSpec::dc(0.0));
  // Idle state: clk high (slave holding) — the retention-capable state.
  clk_.source = circuit_.add<VSource>("Vclk", n_clk, spice::kGround,
                                      SourceSpec::dc(pp_.vdd));
  clk_.value = pp_.vdd;
  sr_.source = circuit_.add<VSource>("Vsr", n_sr, spice::kGround,
                                     SourceSpec::dc(0.0));
  ctrl_.source = circuit_.add<VSource>("Vctrl", n_ctrl, spice::kGround,
                                       SourceSpec::dc(pp_.vctrl_normal));
  ctrl_.value = pp_.vctrl_normal;

  build_power_switch(circuit_, "top", pp_, n_vdd_, n_vvdd, n_pg_,
                     pp_.fins_power_switch);
  handles_ = build_nvff(circuit_, "ff", pp_, n_d, n_clk, n_vvdd, n_sr, n_ctrl,
                        nonvolatile_);
  tracks_ = {&vdd_, &pg_, &d_, &clk_, &sr_, &ctrl_};
}

void NvffTestbench::set_level(Track& track, double t, double v, double ramp) {
  if (ramp <= 0.0) ramp = slew_;
  double start = t;
  if (!track.points.empty()) {
    start = std::max(start, track.points.back().first + slew_ * 0.01);
  }
  if (v == track.value) return;
  track.points.emplace_back(start, track.value);
  track.points.emplace_back(start + ramp, v);
  track.value = v;
}

void NvffTestbench::add_phase(const std::string& name, double t0, double t1) {
  phases_.push_back({name, t0, t1});
}

void NvffTestbench::op_clock_data(bool data) {
  const double T = pp_.clock_period();
  const double t0 = t_;
  // Data valid, then clk high (master samples), then falling edge at the
  // midpoint propagates to Q, then clk returns high to re-enter hold.
  set_level(d_, t0 + 0.05 * T, data ? pp_.vdd : 0.0);
  set_level(clk_, t0 + 0.15 * T, pp_.vdd);   // (already high on first use)
  set_level(clk_, t0 + 0.50 * T, 0.0);       // falling edge: Q updates
  set_level(clk_, t0 + 0.90 * T, pp_.vdd);   // back to hold
  add_phase(data ? "clock1" : "clock0", t0, t0 + T);
  t_ = t0 + T;
}

void NvffTestbench::op_hold(double duration) {
  add_phase("hold", t_, t_ + duration);
  t_ += duration;
}

void NvffTestbench::op_store() {
  if (!nonvolatile_) throw std::logic_error("op_store: volatile FF");
  const double step = pp_.store_pulse + 2e-9;
  const double t0 = t_;
  set_level(ctrl_, t0, 0.0);
  set_level(sr_, t0, pp_.vsr);
  add_phase("store_h", t0, t0 + step);
  set_level(ctrl_, t0 + step, pp_.vctrl_store);
  add_phase("store_l", t0 + step, t0 + 2 * step);
  set_level(sr_, t0 + 2 * step, 0.0);
  set_level(ctrl_, t0 + 2 * step, pp_.vctrl_normal);
  t_ = t0 + 2 * step + 4 * slew_;
}

void NvffTestbench::op_shutdown(double duration) {
  const double t0 = t_;
  set_level(pg_, t0, pp_.vpg_supercutoff);
  set_level(ctrl_, t0, 0.0);
  set_level(d_, t0, 0.0);
  add_phase("shutdown", t0, t0 + duration);
  t_ = t0 + duration;
}

void NvffTestbench::op_restore() {
  const double t0 = t_;
  if (nonvolatile_) set_level(sr_, t0, pp_.vsr);
  set_level(pg_, t0 + slew_, 0.0, 0.5e-9);
  const double t1 = t0 + 0.5e-9 + 1.5e-9;
  if (nonvolatile_) {
    set_level(sr_, t1, 0.0);
    set_level(ctrl_, t1, pp_.vctrl_normal);
  }
  add_phase("restore", t0, t1 + 4 * slew_);
  t_ = t1 + 4 * slew_;
}

NvffTestbench::Result NvffTestbench::run() {
  if (phases_.empty()) throw std::logic_error("NvffTestbench: nothing scheduled");
  for (Track* tr : tracks_) {
    if (tr->source && !tr->points.empty()) {
      tr->source->set_spec(SourceSpec::pwl(tr->points));
    }
  }
  std::vector<spice::Probe> probes;
  probes.push_back(spice::Probe::node_voltage(handles_.q, "V(Q)"));
  probes.push_back(spice::Probe::node_voltage(handles_.qb, "V(QB)"));
  probes.push_back(
      spice::Probe::node_voltage(circuit_.find_node("vvdd"), "V(VVDD)"));
  std::vector<std::string> names;
  for (Track* tr : tracks_) {
    if (!tr->source) continue;
    names.push_back(tr->source->name());
    probes.push_back(
        spice::Probe::source_energy(tr->source, "E:" + tr->source->name()));
  }
  spice::TranOptions topt;
  topt.t_stop = t_ + 1e-9;
  topt.dt_max = std::clamp(topt.t_stop / 1000.0, 50e-12, 5e-9);
  spice::TranAnalysis tran(circuit_, topt, probes);
  return Result{tran.run(), phases_, names};
}

double NvffTestbench::Result::energy(double t0, double t1) const {
  double sum = 0.0;
  for (const auto& name : sources) {
    sum += wave.value_at("E:" + name, t1) - wave.value_at("E:" + name, t0);
  }
  return sum;
}

const PhaseWindow& NvffTestbench::Result::phase(const std::string& name,
                                                int occurrence) const {
  int seen = 0;
  for (const auto& ph : phases) {
    if (ph.name == name) {
      if (seen == occurrence) return ph;
      ++seen;
    }
  }
  throw std::out_of_range("NvffTestbench::Result: no phase " + name);
}

NvffEnergetics characterize_nvff(const models::PaperParams& pp) {
  NvffEnergetics out;

  NvffTestbench tb(pp);
  tb.op_clock_data(true);
  tb.op_clock_data(false);
  tb.op_clock_data(true);   // measured cycle
  tb.op_hold(5e-9);
  tb.op_store();
  tb.op_shutdown(3e-6);
  tb.op_restore();
  tb.op_hold(3e-9);
  auto res = tb.run();

  out.e_clock = res.energy(res.phase("clock1", 1));
  const auto& sh = res.phase("store_h");
  const auto& sl = res.phase("store_l");
  out.e_store = res.energy(sh.t0, sl.t1);
  out.t_store = sl.t1 - sh.t0;
  const auto& rs = res.phase("restore");
  out.e_restore = res.energy(rs);
  out.t_restore = rs.duration();

  const auto& hold = res.phase("hold", 0);
  out.p_static_hold = res.energy(hold) / hold.duration();

  out.store_verified =
      tb.mtj_q()->state() == models::MtjState::kAntiparallel &&
      tb.mtj_qb()->state() == models::MtjState::kParallel;
  const auto& sd = res.phase("shutdown");
  const double vv = res.wave.value_at("V(VVDD)", sd.t1 - 1e-9);
  const double q = res.wave.value_at("V(Q)", tb.now() - 0.5e-9);
  const double qb = res.wave.value_at("V(QB)", tb.now() - 0.5e-9);
  out.restore_verified = vv < 0.25 * pp.vdd && q > 0.8 * pp.vdd &&
                         qb < 0.2 * pp.vdd;

  // Shutdown static power from the tail of the gated window (rail collapsed).
  out.p_static_shutdown =
      res.energy(sd.t1 - 0.5e-6, sd.t1) / 0.5e-6;
  return out;
}

}  // namespace nvsram::sram
