// Per-architecture benchmark schedules (the stimulus side of Fig. 5).
//
// Builds a CellTestbench with one full benchmark cycle of the requested
// power-gating architecture scheduled: n_RW read/write repetitions followed
// by the architecture's long-idle strategy (NVPG store + shutdown + restore,
// NOF power-off around every access, OSR low-voltage sleep).  The result is
// *scheduled, not run* — callers either execute it (benches) or export its
// timeline for static protocol analysis (`nvlint --bench`, golden tests).
//
// Lives in sram (not core) so the lint CLI can build decks without linking
// the architecture-level energy model; the enum is therefore local.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "sram/testbench.h"

namespace nvsram::sram {

enum class BenchArch { kNVPG, kNOF, kOSR };

const char* to_string(BenchArch arch);
std::optional<BenchArch> bench_arch_from_string(const std::string& id);

struct ScheduleParams {
  int n_rw = 2;          // read/write repetitions before the long idle
  double t_sl = 100e-9;  // short sleep (OSR/NVPG) / short shutdown (NOF)
  double t_sd = 1e-6;    // long shutdown (NVPG/NOF) / long sleep (OSR)
};

// Returns the testbench by pointer: CellTestbench self-references its tracks
// and circuit, so it must not move after construction.
std::unique_ptr<CellTestbench> build_benchmark_schedule(
    BenchArch arch, const models::PaperParams& pp, const ScheduleParams& sp,
    TestbenchOptions opts = {});

}  // namespace nvsram::sram
