// Netlist builders for the paper's cells (Fig. 2).
//
// * 6T-SRAM cell: cross-coupled inverters + access FETs, powered from a
//   virtual-VDD rail.
// * NV-SRAM cell: the 6T core plus two PS-FinFET branches
//       Q -- PS-FinFET(gate = SR) -- Y -- MTJ(free | pinned) -- CTRL
//   The FET sits next to the storage node so both store steps see full gate
//   drive.  The MTJ pinned terminal faces the CTRL line, so the H-store
//   current (storage node -> CTRL) is negative in the MTJ convention and
//   drives P -> AP, matching the paper's I_MTJ^{P->AP} H-store and
//   I_MTJ^{AP->P} L-store.
// * Header power switch: p-channel FinFET between VDD and virtual VDD whose
//   gate is the PG line (driven above VDD for super cutoff).
#pragma once

#include <functional>
#include <string>

#include "models/paper_params.h"
#include "spice/circuit.h"
#include "spice/fet_element.h"
#include "spice/mtj_element.h"

namespace nvsram::sram {

// Per-device parameter perturbation hooks (Monte-Carlo mismatch).  Called
// with the device name and the nominal parameters just before the device is
// instantiated; mutate in place.  Empty std::function = no variation.
using FetVary = std::function<void(const std::string&, models::FinFETParams&)>;
using MtjVary = std::function<void(const std::string&, models::MTJParams&)>;

// Handles to the interesting parts of one built cell.
struct CellHandles {
  spice::NodeId q = spice::kGround;
  spice::NodeId qb = spice::kGround;
  spice::NodeId bl = spice::kGround;
  spice::NodeId blb = spice::kGround;
  spice::NodeId wl = spice::kGround;
  spice::NodeId vvdd = spice::kGround;
  // NV-SRAM only:
  spice::NodeId sr = spice::kGround;
  spice::NodeId ctrl = spice::kGround;
  spice::MTJElement* mtj_q = nullptr;   // on the Q side
  spice::MTJElement* mtj_qb = nullptr;  // on the QB side
  bool nonvolatile = false;
};

// Builds the volatile 6T core.  All rail/line nodes are passed in so cells
// can share word lines, bit lines and power domains.  `prefix` namespaces
// device and internal node names.
CellHandles build_6t_cell(spice::Circuit& ckt, const std::string& prefix,
                          const models::PaperParams& pp, spice::NodeId vvdd,
                          spice::NodeId wl, spice::NodeId bl, spice::NodeId blb,
                          const FetVary& fet_vary = {});

// Builds the NV-SRAM cell: 6T core + two PS-FinFET/MTJ branches.
// Both MTJs start in the given states (defaults: parallel).
CellHandles build_nvsram_cell(
    spice::Circuit& ckt, const std::string& prefix, const models::PaperParams& pp,
    spice::NodeId vvdd, spice::NodeId wl, spice::NodeId bl, spice::NodeId blb,
    spice::NodeId sr, spice::NodeId ctrl,
    models::MtjState init_q = models::MtjState::kParallel,
    models::MtjState init_qb = models::MtjState::kParallel,
    const FetVary& fet_vary = {}, const MtjVary& mtj_vary = {});

// Header power switch (p-FinFET, `fins` fins): vdd -> vvdd, gate = pg.
spice::FinFETElement* build_power_switch(spice::Circuit& ckt,
                                         const std::string& prefix,
                                         const models::PaperParams& pp,
                                         spice::NodeId vdd, spice::NodeId vvdd,
                                         spice::NodeId pg, int fins);

}  // namespace nvsram::sram
