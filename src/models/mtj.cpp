#include "models/mtj.h"

#include <cmath>
#include <limits>
#include <numbers>
#include <sstream>
#include <stdexcept>

#include "util/units.h"

namespace nvsram::models {

const char* to_string(MtjState s) {
  return s == MtjState::kParallel ? "P" : "AP";
}

double MTJParams::area() const {
  const double r = 0.5 * diameter;
  return std::numbers::pi * r * r;
}

double MTJParams::rp0() const { return ra_product / area(); }

double MTJParams::rap0() const { return rp0() * (1.0 + tmr0); }

double MTJParams::critical_current() const { return jc * area(); }

std::string MTJParams::describe() const {
  std::ostringstream os;
  os << "MTJ phi=" << util::si_format(diameter, "m")
     << " Rp=" << util::si_format(rp0(), "Ohm")
     << " Rap=" << util::si_format(rap0(), "Ohm")
     << " Ic=" << util::si_format(critical_current(), "A")
     << " TMR0=" << tmr0 * 100.0 << "%";
  return os.str();
}

MTJ::MTJ(MTJParams params) : params_(params) {
  if (params_.diameter <= 0.0 || params_.ra_product <= 0.0 ||
      params_.vh <= 0.0 || params_.jc <= 0.0 || params_.tau0 <= 0.0) {
    throw std::invalid_argument("MTJ: parameters must be positive");
  }
}

double MTJ::tmr(double voltage) const {
  const double x = voltage / params_.vh;
  return params_.tmr0 / (1.0 + x * x);
}

double MTJ::resistance(MtjState state, double voltage) const {
  const double rp = params_.rp0();
  if (state == MtjState::kParallel) return rp;
  return rp * (1.0 + tmr(voltage));
}

MTJ::IV MTJ::current(MtjState state, double voltage) const {
  if (state == MtjState::kParallel) {
    const double g = 1.0 / params_.rp0();
    return {voltage * g, g};
  }
  // AP branch: I = V / (Rp (1 + TMR0/(1+x^2))),  x = V/Vh.
  // Write as I = V (1 + x^2) / (Rp (1 + x^2 + TMR0)).
  const double rp = params_.rp0();
  const double x = voltage / params_.vh;
  const double x2 = x * x;
  const double denom = rp * (1.0 + x2 + params_.tmr0);
  const double current = voltage * (1.0 + x2) / denom;
  // dI/dV via quotient rule; let u = V (1 + x^2) = V + V^3/Vh^2,
  // du/dV = 1 + 3 x^2; let w = Rp (1 + x^2 + TMR0), dw/dV = 2 Rp x / Vh.
  const double du = 1.0 + 3.0 * x2;
  const double dw = 2.0 * rp * x / params_.vh;
  const double u = voltage * (1.0 + x2);
  const double conductance = (du * denom - u * dw) / (denom * denom);
  return {current, conductance};
}

void MTJ::current_many(MtjState state, const double* voltage, std::size_t n,
                       IV* out) const {
  for (std::size_t i = 0; i < n; ++i) out[i] = current(state, voltage[i]);
}

bool MTJ::polarity_drives_switch(MtjState from, double current) {
  // Positive current (pinned -> free): AP -> P.  Negative: P -> AP.
  if (from == MtjState::kAntiparallel) return current > 0.0;
  return current < 0.0;
}

double MTJ::switching_time(MtjState from, double current) const {
  if (!polarity_drives_switch(from, current)) {
    return std::numeric_limits<double>::infinity();
  }
  const double overdrive = std::fabs(current) / params_.critical_current();
  if (overdrive <= 1.0) return std::numeric_limits<double>::infinity();
  return params_.tau0 / (overdrive - 1.0);
}

bool SwitchingState::advance(const MTJ& mtj, double current, double dt) {
  const double tsw = mtj.switching_time(state_, current);
  if (!std::isfinite(tsw)) {
    progress_ = 0.0;
    return false;
  }
  progress_ += dt / tsw;
  if (progress_ >= 1.0) {
    state_ = (state_ == MtjState::kParallel) ? MtjState::kAntiparallel
                                             : MtjState::kParallel;
    progress_ = 0.0;
    return true;
  }
  return false;
}

double MTJ::thermal_switching_tau(MtjState from, double current) const {
  if (!polarity_drives_switch(from, current)) {
    return std::numeric_limits<double>::infinity();
  }
  const double overdrive = std::fabs(current) / params_.critical_current();
  if (overdrive >= 1.0) return switching_time(from, current);
  return params_.attempt_time *
         std::exp(params_.thermal_stability * (1.0 - overdrive));
}

double MTJ::retention_time() const {
  return params_.attempt_time * std::exp(params_.thermal_stability);
}

double MTJ::disturb_probability(MtjState from, double current,
                                double duration) const {
  const double tau = thermal_switching_tau(from, current);
  if (!std::isfinite(tau)) return 0.0;
  return 1.0 - std::exp(-duration / tau);
}

double MTJ::write_error_rate(MtjState from, double current,
                             double pulse) const {
  if (!polarity_drives_switch(from, current)) return 1.0;
  const double overdrive = std::fabs(current) / params_.critical_current();
  if (overdrive <= 1.0) {
    // Sub-critical: only thermal activation completes the write.
    return 1.0 - disturb_probability(from, current, pulse);
  }
  const double t_sw = switching_time(from, current);
  if (pulse <= t_sw) return 1.0;
  return std::exp(-params_.error_tail_factor * (pulse - t_sw) / params_.tau0);
}

MTJParams paper_mtj(bool fast) {
  MTJParams p;
  p.tmr0 = 1.0;
  p.ra_product = 2.0e-12;  // 2 Ohm um^2
  p.vh = 0.5;
  p.jc = fast ? 1e10 : 5e10;  // 1e6 / 5e6 A/cm^2 in A/m^2
  p.diameter = 20e-9;
  p.tau0 = 3e-9;
  return p;
}

}  // namespace nvsram::models
