// Compact FinFET I-V / C-V model.
//
// Substitutes for the 20 nm PTM BSIM-CMG card the paper used in HSPICE.
// The core is an EKV-style charge-sheet interpolation
//
//   Ids = Is * [ F(xf) - F(xr) ] * mob(Vgs) * clm(Vds)
//   F(x) = ln^2(1 + exp(x / 2)),     xf/r = (Vp - Vs/d) / Vt
//   Vp   = (Vgs - Vth_eff) / n,      Vth_eff = Vth0 - dibl * Vds
//   mob  = 1 / (1 + theta * s(Vgs)),  s = n Vt softplus((Vgs - Vth0)/(n Vt))
//
// mob() models vertical-field mobility degradation / velocity saturation as
// a smooth overdrive-dependent factor; keeping it independent of Vds makes
// gds provably positive (monotone output curves), which both matches real
// long-channel-free devices well enough and keeps Newton iterations stable.
//
// which is C-infinity continuous from deep subthreshold to strong inversion
// (what Newton-Raphson needs), source/drain symmetric after terminal
// swapping, and calibrated to the public 20 nm HP PTM headline figures
// (Ion ~ 1.3 mA/um, Ioff ~ 100 nA/um, SS ~ 72 mV/dec, |Vth| ~ 0.25 V).
//
// Fin geometry enters through the effective width of one fin,
// W_fin = 2 * H_fin + T_fin, multiplied by the fin count.
#pragma once

#include <cstddef>
#include <string>

namespace nvsram::models {

enum class FetType { kNmos, kPmos };

struct FinFETParams {
  FetType type = FetType::kNmos;

  // Geometry (meters).
  double channel_length = 20e-9;
  double fin_width = 15e-9;    // T_fin
  double fin_height = 28e-9;   // H_fin
  int fin_count = 1;

  // DC model.
  double vth0 = 0.25;          // zero-bias threshold magnitude (V)
  double subthreshold_n = 1.21;  // slope factor (SS = n Vt ln10 ~ 72 mV/dec)
  double kp = 2.35e-4;         // mobility * Cox (A/V^2)
  double dibl = 0.10;          // Vth shift per volt of Vds
  double theta_mob = 1.2;      // mobility degradation vs gate overdrive (1/V)
  double lambda = 0.06;        // channel-length modulation (1/V)
  double temperature = 300.0;  // K
  // Temperature coefficients (relative to 300 K): Vth drops ~0.7 mV/K and
  // mobility degrades ~ (T/300)^-1.5; both standard silicon behaviour.
  double vth_tempco = 7e-4;    // V/K
  double mobility_temp_exponent = 1.5;

  // Capacitance model (per square meter / per meter).
  double cox_per_area = 0.0345;    // F/m^2 (~1 nm EOT)
  double overlap_cap_per_width = 2.8e-10;  // F/m of gate edge
  double junction_cap_per_width = 2.0e-10; // F/m, drain/source to ground

  // Effective channel width of all fins (m).
  double effective_width() const {
    return static_cast<double>(fin_count) * (2.0 * fin_height + fin_width);
  }

  // Lumped terminal capacitances (F): gate-source, gate-drain, and
  // drain/source junction capacitance to ground.
  double cgs() const;
  double cgd() const;
  double cjunction() const;

  // Memberwise equality; the batched stamping path uses it to detect lanes
  // that share one parameter set (and so one evaluate_many() call).
  bool operator==(const FinFETParams&) const = default;

  std::string describe() const;
};

// Operating-point evaluation of the model.
struct FinFETOutput {
  double ids = 0.0;  // drain current, positive into drain (NMOS convention)
  double gm = 0.0;   // dIds/dVgs
  double gds = 0.0;  // dIds/dVds
};

class FinFET {
 public:
  explicit FinFET(FinFETParams params);

  const FinFETParams& params() const { return params_; }

  // Drain current and small-signal derivatives for terminal voltages given
  // relative to the source convention of the *netlist* (i.e. Vgs, Vds may be
  // any sign; the model handles source/drain swap and PMOS internally).
  FinFETOutput evaluate(double vgs, double vds) const;

  // Lane-batched evaluation for the structure-of-arrays stamping path:
  // out[i] = evaluate(vgs[i], vds[i]).  Runs the scalar core per lane, so
  // every lane's result is bit-identical to the corresponding scalar call.
  void evaluate_many(const double* vgs, const double* vds, std::size_t n,
                     FinFETOutput* out) const;

  // Convenience scalars.
  double ids(double vgs, double vds) const { return evaluate(vgs, vds).ids; }

  // Headline metrics used by calibration tests.
  double on_current() const;      // |Ids| at |Vgs| = |Vds| = vdd_ref
  double off_current() const;     // |Ids| at Vgs = 0, |Vds| = vdd_ref
  double subthreshold_swing() const;  // mV/dec around Vgs ~ vth0/2
  double vdd_ref = 0.9;

 private:
  // NMOS-normalized core (vgs, vds >= 0 handled inside by swap).
  FinFETOutput evaluate_nmos(double vgs, double vds) const;

  FinFETParams params_;
  double is_;        // specific current 2 n kp(T) (W/L) Vt^2
  double vt_;        // thermal voltage
  double vth_eff0_;  // temperature-adjusted zero-Vds threshold
};

// PTM-calibrated parameter presets for the paper's 20 nm technology.
FinFETParams ptm20_nmos(int fin_count = 1);
FinFETParams ptm20_pmos(int fin_count = 1);

}  // namespace nvsram::models
