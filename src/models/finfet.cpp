#include "models/finfet.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/units.h"

namespace nvsram::models {

namespace {

// softplus(y) = ln(1 + e^y), numerically safe for all y.
double softplus(double y) {
  if (y > 40.0) return y;
  if (y < -40.0) return std::exp(y);
  return std::log1p(std::exp(y));
}

// logistic(y) = 1 / (1 + e^-y)
double logistic(double y) {
  if (y > 40.0) return 1.0;
  if (y < -40.0) return std::exp(y);
  return 1.0 / (1.0 + std::exp(-y));
}

// EKV interpolation function F(x) = ln^2(1 + e^{x/2}) and its derivative.
struct FVal {
  double f;
  double df;
};

FVal ekv_f(double x) {
  const double sp = softplus(0.5 * x);
  const double sg = logistic(0.5 * x);
  return {sp * sp, sp * sg};
}

}  // namespace

double FinFETParams::cgs() const {
  const double w = effective_width();
  return 0.5 * cox_per_area * w * channel_length + overlap_cap_per_width * w;
}

double FinFETParams::cgd() const { return cgs(); }

double FinFETParams::cjunction() const {
  return junction_cap_per_width * effective_width();
}

std::string FinFETParams::describe() const {
  std::ostringstream os;
  os << (type == FetType::kNmos ? "nfin" : "pfin") << " L="
     << util::si_format(channel_length, "m") << " W="
     << util::si_format(effective_width(), "m") << " (" << fin_count
     << " fin) Vth0=" << vth0 << "V n=" << subthreshold_n;
  return os.str();
}

FinFET::FinFET(FinFETParams params) : params_(params) {
  if (params_.fin_count < 1) {
    throw std::invalid_argument("FinFET: fin_count must be >= 1");
  }
  if (params_.channel_length <= 0.0) {
    throw std::invalid_argument("FinFET: channel_length must be positive");
  }
  vt_ = util::thermal_voltage(params_.temperature);
  // Temperature scaling of threshold and mobility, referenced to 300 K.
  const double dt = params_.temperature - 300.0;
  vth_eff0_ = params_.vth0 - params_.vth_tempco * dt;
  const double kp_t =
      params_.kp *
      std::pow(params_.temperature / 300.0, -params_.mobility_temp_exponent);
  const double w_over_l = params_.effective_width() / params_.channel_length;
  is_ = 2.0 * params_.subthreshold_n * kp_t * w_over_l * vt_ * vt_;
}

FinFETOutput FinFET::evaluate_nmos(double vgs, double vds) const {
  // Terminal symmetry: for vds < 0 the roles of source and drain swap.
  if (vds < 0.0) {
    const FinFETOutput sw = evaluate_nmos(vgs - vds, -vds);
    FinFETOutput out;
    // I(vgs, vds) = -J(vgs - vds, -vds)  =>  dI/dvgs = -J1, dI/dvds = J1 + J2.
    out.ids = -sw.ids;
    out.gm = -sw.gm;
    out.gds = sw.gm + sw.gds;
    return out;
  }

  const double n = params_.subthreshold_n;
  const double vth_eff = vth_eff0_ - params_.dibl * vds;
  const double vp = (vgs - vth_eff) / n;
  const double xf = vp / vt_;
  const double xr = (vp - vds) / vt_;

  const FVal ff = ekv_f(xf);
  const FVal fr = ekv_f(xr);

  const double ids0 = is_ * (ff.f - fr.f);
  const double dids0_dvgs = is_ * (ff.df - fr.df) / (n * vt_);
  // Note dibl/n < 1, so both terms below are non-negative: gds > 0 always.
  const double dids0_dvds =
      is_ * (ff.df * (params_.dibl / n) + fr.df * (1.0 - params_.dibl / n)) / vt_;

  // Smooth overdrive for the mobility-degradation factor (vds-independent).
  const double x_od = (vgs - vth_eff0_) / (n * vt_);
  const double s_od = n * vt_ * softplus(x_od);
  const double mob = 1.0 / (1.0 + params_.theta_mob * s_od);
  const double dmob_dvgs = -params_.theta_mob * mob * mob * logistic(x_od);

  const double clm = 1.0 + params_.lambda * vds;

  FinFETOutput out;
  out.ids = ids0 * mob * clm;
  out.gm = (dids0_dvgs * mob + ids0 * dmob_dvgs) * clm;
  out.gds = dids0_dvds * mob * clm + ids0 * mob * params_.lambda;
  return out;
}

FinFETOutput FinFET::evaluate(double vgs, double vds) const {
  if (params_.type == FetType::kNmos) {
    return evaluate_nmos(vgs, vds);
  }
  // PMOS mirror: I_p(vgs, vds) = -I_n(-vgs, -vds); derivatives carry through
  // with both sign flips cancelling.
  const FinFETOutput m = evaluate_nmos(-vgs, -vds);
  FinFETOutput out;
  out.ids = -m.ids;
  out.gm = m.gm;
  out.gds = m.gds;
  return out;
}

void FinFET::evaluate_many(const double* vgs, const double* vds, std::size_t n,
                           FinFETOutput* out) const {
  for (std::size_t i = 0; i < n; ++i) out[i] = evaluate(vgs[i], vds[i]);
}

double FinFET::on_current() const {
  const double s = (params_.type == FetType::kNmos) ? 1.0 : -1.0;
  return std::fabs(evaluate(s * vdd_ref, s * vdd_ref).ids);
}

double FinFET::off_current() const {
  const double s = (params_.type == FetType::kNmos) ? 1.0 : -1.0;
  return std::fabs(evaluate(0.0, s * vdd_ref).ids);
}

double FinFET::subthreshold_swing() const {
  const double s = (params_.type == FetType::kNmos) ? 1.0 : -1.0;
  const double v1 = 0.05;
  const double v2 = 0.15;
  const double i1 = std::fabs(evaluate(s * v1, s * vdd_ref).ids);
  const double i2 = std::fabs(evaluate(s * v2, s * vdd_ref).ids);
  return (v2 - v1) / (std::log10(i2) - std::log10(i1)) * 1e3;  // mV/dec
}

FinFETParams ptm20_nmos(int fin_count) {
  FinFETParams p;
  p.type = FetType::kNmos;
  p.fin_count = fin_count;
  p.vth0 = 0.25;
  p.subthreshold_n = 1.21;
  p.kp = 2.35e-4;
  p.dibl = 0.10;
  p.theta_mob = 1.2;
  p.lambda = 0.06;
  return p;
}

FinFETParams ptm20_pmos(int fin_count) {
  FinFETParams p;
  p.type = FetType::kPmos;
  p.fin_count = fin_count;
  p.vth0 = 0.25;
  p.subthreshold_n = 1.24;
  p.kp = 1.95e-4;   // lower hole mobility
  p.dibl = 0.11;
  p.theta_mob = 1.3;
  p.lambda = 0.065;
  return p;
}

}  // namespace nvsram::models
