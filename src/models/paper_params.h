// Table I of the paper, as a single configuration bundle.
//
// Every bench prints this so the reproduced figures carry their parameters,
// mirroring how the paper couples Table I to the evaluation.
#pragma once

#include <cstdint>
#include <string>

#include "models/finfet.h"
#include "models/mtj.h"

namespace nvsram::models {

struct PaperParams {
  // FinFET technology.
  double channel_length = 20e-9;
  double fin_width = 15e-9;
  double fin_height = 28e-9;
  double temperature = 300.0;  // K (affects leakage, drive, thermal voltage)

  // NV-SRAM cell biases (Table I).
  double vdd = 0.9;              // supply
  double vsr = 0.65;             // SR line (PS-FinFET gate) during store/restore
  double vctrl_store = 0.5;      // CTRL line during L-store
  double vctrl_normal = 0.07;    // CTRL bias minimizing leakage, normal mode
  double vctrl_sleep = 0.04;     // CTRL bias during sleep
  double vvdd_sleep = 0.7;       // virtual-VDD in the sleep retention mode
  // Lowest (virtual) rail at which the cross-coupled core still holds its
  // state; sleep levels below this lose data without a preceding store.
  double vvdd_retention_floor = 0.45;
  double vpg_supercutoff = 1.0;  // power-switch gate overdrive in shutdown

  // Fin numbers (N_FL, N_FD, N_FP, N_FPS) = (1,1,1,1); power switch N_FSW.
  int fins_load = 1;
  int fins_driver = 1;
  int fins_access = 1;
  int fins_ps = 1;
  int fins_power_switch = 7;
  // MTCMOS practice (the paper's ref [1]): the header switch is a
  // high-threshold device so that super cutoff reaches pA-class leakage.
  double power_switch_vth = 0.40;

  // Timing.
  double clock_hz = 300e6;       // read/write speed (1 GHz for Fig. 9(b))
  double store_pulse = 10e-9;    // store duration per step
  double store_current_factor = 1.5;  // target store current = 1.5 x Ic

  // MTJ.
  MTJParams mtj = paper_mtj(false);

  // Derived presets.
  FinFETParams nmos(int fins) const;
  FinFETParams pmos(int fins) const;
  double clock_period() const { return 1.0 / clock_hz; }

  // The Fig. 9(b) "fast" variant: 1 GHz clock and Jc = 1e6 A/cm^2.
  static PaperParams table1();
  static PaperParams table1_fast();

  // Renders the Table I block as printable text.
  std::string describe() const;

  // Stable 64-bit hash over every field (including the MTJ bundle); keys the
  // process-wide characterization cache.
  std::uint64_t fingerprint() const;
};

}  // namespace nvsram::models
