// Spin-transfer-torque MTJ macromodel.
//
// Substitutes for the experiment-calibrated macromodel of ref. [7]
// (Yamamoto & Sugahara, JJAP 48, 043001 (2009)).  It exposes exactly the
// quantities Table I of the paper fixes:
//
//   * bias-dependent tunneling magnetoresistance
//       TMR(V) = TMR0 / (1 + (V / Vh)^2),     Vh = 0.5 V
//   * parallel resistance from the resistance-area product,
//       Rp = RA / A,   A = pi (phi/2)^2,  phi = 20 nm  ->  Rp = 6366 Ohm
//   * antiparallel resistance Rap(V) = Rp * (1 + TMR(V))  ->  12.7 kOhm at 0
//   * current-induced magnetization switching (CIMS) with critical current
//       Ic = Jc * A = 15.7 uA at Jc = 5e6 A/cm^2
//
// Switching dynamics use the precessional-regime closure
//   t_sw(I) = tau0 / (|I| / Ic - 1)          for |I| > Ic
// so the paper's operating point (store at 1.5 x Ic held for 10 ns) switches
// reliably (t_sw = 2 tau0 = 6 ns < 10 ns) while sub-critical currents never
// switch.  The transient engine advances `SwitchingState` per timestep.
//
// Sign convention: `current` is positive when conventional current flows
// from the PINNED-layer terminal through the junction to the FREE-layer
// terminal.  Positive current drives AP -> P; negative current (electrons
// pinned -> free) drives P -> AP.
#pragma once

#include <cstddef>
#include <string>

namespace nvsram::models {

enum class MtjState { kParallel, kAntiparallel };

const char* to_string(MtjState s);

struct MTJParams {
  double tmr0 = 1.0;              // zero-bias TMR (100 %)
  double ra_product = 2.0e-12;    // Ohm * m^2  (2 Ohm um^2)
  double vh = 0.5;                // V at half-maximum TMR
  double jc = 5e10;               // critical current density, A/m^2 (5e6 A/cm^2)
  double diameter = 20e-9;        // m
  double tau0 = 3e-9;             // switching-dynamics time scale (s)

  // Reliability closure (extension beyond the deterministic CIMS model):
  double thermal_stability = 60.0;  // Delta = E_barrier / kT
  double attempt_time = 1e-9;       // Neel-Brown attempt time tau_a (s)
  double error_tail_factor = 5.0;   // steepness of the super-critical WER tail

  double area() const;            // m^2
  double rp0() const;             // parallel resistance at zero bias
  double rap0() const;            // antiparallel resistance at zero bias
  double critical_current() const;  // Ic = jc * area

  // Memberwise equality; the batched stamping path uses it to detect lanes
  // that share one parameter set (and so one current_many() call).
  bool operator==(const MTJParams&) const = default;

  std::string describe() const;
};

class MTJ {
 public:
  explicit MTJ(MTJParams params);

  const MTJParams& params() const { return params_; }

  // Bias-dependent TMR.
  double tmr(double voltage) const;

  // Junction resistance for a given state and bias voltage across it.
  double resistance(MtjState state, double voltage) const;

  // Small-signal conductance and its derivative w.r.t. voltage,
  // for the Newton stamp: I(V) = V / R(state, V).
  struct IV {
    double current;
    double conductance;  // dI/dV
  };
  IV current(MtjState state, double voltage) const;

  // Lane-batched form for the structure-of-arrays stamping path:
  // out[i] = current(state, voltage[i]); every lane's result is
  // bit-identical to the corresponding scalar call.
  void current_many(MtjState state, const double* voltage, std::size_t n,
                    IV* out) const;

  // Deterministic switching time for a constant overdrive current; +inf if
  // |current| <= Ic or the polarity opposes the transition.
  double switching_time(MtjState from, double current) const;

  // True if `current` has the polarity that can switch out of `from`.
  static bool polarity_drives_switch(MtjState from, double current);

  // ---- reliability closures (documented approximations) ----
  // Mean thermally-activated switching time in the sub-critical regime
  // (Neel-Brown with spin-torque barrier lowering):
  //   tau(I) = tau_a * exp(Delta * (1 - |I|/Ic))      for |I| <= Ic
  // +inf for the wrong polarity; equals the deterministic model above Ic.
  double thermal_switching_tau(MtjState from, double current) const;

  // Zero-bias retention time tau_a * exp(Delta) (~1e17 s at Delta = 60).
  double retention_time() const;

  // Probability the state flips during `duration` at constant `current`
  // (thermal activation; used for read-disturb and retention estimates).
  double disturb_probability(MtjState from, double current,
                             double duration) const;

  // Write error rate of a store pulse: probability CIMS has NOT completed
  // after `pulse` seconds at constant super-critical current.  Closure:
  //   t < t_sw:                 ~1 (pulse shorter than the ballistic time)
  //   t >= t_sw:                exp(-k (t - t_sw) / tau0)
  // (k = error_tail_factor models the thermal initial-angle spread).
  double write_error_rate(MtjState from, double current, double pulse) const;

 private:
  MTJParams params_;
};

// Per-device switching progress integrator, advanced by the transient engine.
class SwitchingState {
 public:
  explicit SwitchingState(MtjState initial = MtjState::kParallel)
      : state_(initial) {}

  MtjState state() const { return state_; }
  double progress() const { return progress_; }
  void force_state(MtjState s) {
    state_ = s;
    progress_ = 0.0;
  }

  // Advance by `dt` seconds at instantaneous junction current `current`
  // (sign convention above).  Returns true if the state flipped during this
  // step.  Sub-critical or wrong-polarity current resets the accumulated
  // progress (incoherent precession does not persist between pulses).
  bool advance(const MTJ& mtj, double current, double dt);

 private:
  MtjState state_;
  double progress_ = 0.0;
};

// Table I preset; `fast` selects the Fig. 9(b) variant (Jc = 1e6 A/cm^2).
MTJParams paper_mtj(bool fast = false);

}  // namespace nvsram::models
