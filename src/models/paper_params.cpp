#include "models/paper_params.h"

#include <sstream>

#include "util/units.h"

namespace nvsram::models {

FinFETParams PaperParams::nmos(int fins) const {
  FinFETParams p = ptm20_nmos(fins);
  p.channel_length = channel_length;
  p.fin_width = fin_width;
  p.fin_height = fin_height;
  p.temperature = temperature;
  return p;
}

FinFETParams PaperParams::pmos(int fins) const {
  FinFETParams p = ptm20_pmos(fins);
  p.channel_length = channel_length;
  p.fin_width = fin_width;
  p.fin_height = fin_height;
  p.temperature = temperature;
  return p;
}

PaperParams PaperParams::table1() { return PaperParams{}; }

PaperParams PaperParams::table1_fast() {
  PaperParams p;
  p.clock_hz = 1e9;
  p.mtj = paper_mtj(true);
  // The 5x lower Jc allows proportionally weaker store biases while keeping
  // the same 1.5 x Ic margin (store energy drops accordingly).
  p.vsr = 0.40;
  p.vctrl_store = 0.30;
  return p;
}

std::uint64_t PaperParams::fingerprint() const {
  // FNV-1a over the field values (field-by-field, never struct bytes: padding
  // would make the hash nondeterministic).
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ull;
    }
  };
  for (double v :
       {channel_length, fin_width, fin_height, temperature, vdd, vsr,
        vctrl_store, vctrl_normal, vctrl_sleep, vvdd_sleep,
        vvdd_retention_floor, vpg_supercutoff, power_switch_vth, clock_hz,
        store_pulse, store_current_factor, mtj.tmr0, mtj.ra_product, mtj.vh,
        mtj.jc, mtj.diameter, mtj.tau0, mtj.thermal_stability,
        mtj.attempt_time, mtj.error_tail_factor}) {
    mix(&v, sizeof(v));
  }
  for (int v : {fins_load, fins_driver, fins_access, fins_ps,
                fins_power_switch}) {
    mix(&v, sizeof(v));
  }
  return h;
}

std::string PaperParams::describe() const {
  std::ostringstream os;
  os << "Table I parameters\n"
     << "  FinFET: L=" << util::si_format(channel_length, "m")
     << "  fin W=" << util::si_format(fin_width, "m")
     << "  fin H=" << util::si_format(fin_height, "m") << "\n"
     << "  VDD=" << vdd << " V  VSR=" << vsr << " V  VCTRL(store)="
     << vctrl_store << " V  VCTRL(normal)=" << vctrl_normal
     << " V  VCTRL(sleep)=" << vctrl_sleep << " V\n"
     << "  Fins (load,driver,access,PS)=(" << fins_load << "," << fins_driver
     << "," << fins_access << "," << fins_ps << ")  N_FSW="
     << fins_power_switch << "\n"
     << "  Clock=" << util::si_format(clock_hz, "Hz")
     << "  store pulse=" << util::si_format(store_pulse, "s")
     << "  store current=" << store_current_factor << " x Ic\n"
     << "  " << mtj.describe() << "\n";
  return os.str();
}

}  // namespace nvsram::models
