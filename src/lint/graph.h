// CircuitGraph: topology view of a Circuit built from the Device terminal
// introspection API (terminals / dc_paths / voltage_branch).
//
// Three structures are derived in one pass:
//   * per-node pin lists (degree, who touches a node),
//   * DC-conduction connected components (union-find over dc_paths edges),
//     used to find nodes with no DC path to ground,
//   * voltage-branch loop detection (incremental union-find over
//     voltage_branch edges: an edge whose endpoints are already connected
//     closes a loop -> structurally singular MNA matrix).
#pragma once

#include <cstddef>
#include <vector>

#include "spice/circuit.h"
#include "spice/device.h"

namespace nvsram::lint {

// One device pin attached to a node.
struct PinRef {
  const spice::Device* device;
  const char* role;
};

class CircuitGraph {
 public:
  explicit CircuitGraph(const spice::Circuit& circuit);

  std::size_t node_count() const { return pins_.size(); }
  std::size_t degree(spice::NodeId n) const { return pins_[n].size(); }
  const std::vector<PinRef>& pins(spice::NodeId n) const { return pins_[n]; }

  // True if `n` reaches ground through DC-conducting devices.
  bool dc_reaches_ground(spice::NodeId n) const {
    return find(dc_parent_, n) == find(dc_parent_, spice::kGround);
  }

  // Representative of the DC component containing `n` (for grouping the
  // nodes of one floating island into a single diagnostic).
  std::size_t dc_component(spice::NodeId n) const {
    return find(dc_parent_, n);
  }

  // Devices whose voltage-defining branch closed a loop of voltage-defined
  // branches.  Self-loops (plus == minus) are excluded; the linter reports
  // those under the separate vsource-shorted rule.
  const std::vector<const spice::Device*>& voltage_loop_closers() const {
    return loop_closers_;
  }

 private:
  static std::size_t find(std::vector<std::size_t>& parent, std::size_t i);
  static std::size_t find(const std::vector<std::size_t>& parent,
                          std::size_t i);
  static void unite(std::vector<std::size_t>& parent, std::size_t a,
                    std::size_t b);

  std::vector<std::vector<PinRef>> pins_;
  std::vector<std::size_t> dc_parent_;
  std::vector<const spice::Device*> loop_closers_;
};

}  // namespace nvsram::lint
