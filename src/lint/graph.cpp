#include "lint/graph.h"

#include <numeric>

namespace nvsram::lint {

std::size_t CircuitGraph::find(std::vector<std::size_t>& parent,
                               std::size_t i) {
  while (parent[i] != i) {
    parent[i] = parent[parent[i]];  // path halving
    i = parent[i];
  }
  return i;
}

std::size_t CircuitGraph::find(const std::vector<std::size_t>& parent,
                               std::size_t i) {
  while (parent[i] != i) i = parent[i];
  return i;
}

void CircuitGraph::unite(std::vector<std::size_t>& parent, std::size_t a,
                         std::size_t b) {
  parent[find(parent, a)] = find(parent, b);
}

CircuitGraph::CircuitGraph(const spice::Circuit& circuit) {
  const std::size_t n = circuit.node_count();
  pins_.resize(n);
  dc_parent_.resize(n);
  std::iota(dc_parent_.begin(), dc_parent_.end(), 0);
  std::vector<std::size_t> v_parent(n);
  std::iota(v_parent.begin(), v_parent.end(), 0);

  for (const auto& dev : circuit.devices()) {
    for (const auto& term : dev->terminals()) {
      pins_[term.node].push_back({dev.get(), term.role});
    }
    for (const auto& [a, b] : dev->dc_paths()) {
      unite(dc_parent_, a, b);
    }
    if (const auto vb = dev->voltage_branch()) {
      const auto [p, q] = *vb;
      if (p == q) continue;  // shorted source, reported separately
      if (find(v_parent, p) == find(v_parent, q)) {
        loop_closers_.push_back(dev.get());
      } else {
        unite(v_parent, p, q);
      }
    }
  }
  // Collapse the DC forest so the const find() used by queries is O(depth 1).
  for (std::size_t i = 0; i < n; ++i) dc_parent_[i] = find(dc_parent_, i);
}

}  // namespace nvsram::lint
