#include "lint/linter.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "lint/dataflow/check.h"
#include "lint/graph.h"
#include "lint/power/check.h"
#include "lint/temporal/protocol.h"
#include "lint/temporal/timeline.h"
#include "lint/temporal/units_check.h"
#include "spice/circuit.h"
#include "spice/controlled.h"
#include "spice/elements.h"
#include "spice/fet_element.h"
#include "spice/mtj_element.h"
#include "spice/netlist_parser.h"
#include "spice/structural_analysis.h"

namespace nvsram::lint {

namespace {

using spice::Circuit;
using spice::Device;
using spice::NodeId;
using spice::ParsedNetlist;

class Linter {
 public:
  Linter(const Circuit& circuit, const ParsedNetlist* netlist,
         const LintOptions& options, LintPasses passes)
      : circuit_(circuit), netlist_(netlist), options_(options),
        passes_(std::move(passes)) {
    // The CircuitGraph is only consumed by the structural group; skipping its
    // construction is the point of the selective entry for large flattened
    // circuits.
    if (passes_.structural) graph_.emplace(circuit);
    floating_nodes_ = std::move(passes_.preset_floating);
  }

  LintReport run() {
    if (passes_.structural) {
      check_float_nodes();
      check_dc_paths();
      check_voltage_branches();
      check_self_connected();
      check_structure();
      check_values();
      check_sram_topology();
    }
    if (netlist_ != nullptr) {
      if (passes_.cards) check_cards();
      if (passes_.probes) check_probes();
      if (passes_.temporal) check_temporal();
      if (passes_.parse) {
        for (const auto& d : netlist_->parse_diagnostics()) {
          if (!options_.enabled(d.rule)) continue;
          if (d.severity < options_.min_severity) continue;
          Diagnostic copy = d;
          stamp_instance_path(copy);
          report_.add(std::move(copy));
        }
      }
    }
    return std::move(report_);
  }

 private:
  // Source line of a device, following the "M1" -> "M1.cgs" naming of
  // helper-generated companions by stripping trailing dot segments.
  int device_line(const std::string& name) const {
    if (netlist_ == nullptr) return -1;
    std::string probe = name;
    for (;;) {
      const int line = netlist_->device_line(probe);
      if (line >= 0) return line;
      const auto dot = probe.rfind('.');
      if (dot == std::string::npos) return -1;
      probe.resize(dot);
    }
  }

  int node_line(const std::string& name) const {
    return netlist_ == nullptr ? -1 : netlist_->node_line(name);
  }

  // Findings inside flattened .subckt instances carry the hierarchical
  // instance path of their device (or node), e.g. "X3/X17" for "X3.X17.M2".
  void stamp_instance_path(Diagnostic& d) const {
    if (netlist_ == nullptr || !d.instance_path.empty()) return;
    const std::string& name = d.device.empty() ? d.node : d.device;
    if (!name.empty()) d.instance_path = netlist_->instance_path_of(name);
  }

  void emit(const char* rule, std::string message, std::string device,
            std::string node, int line) {
    if (!options_.enabled(rule)) return;
    Diagnostic d;
    d.rule = rule;
    d.severity = default_severity(rule);
    if (d.severity < options_.min_severity) return;
    d.message = std::move(message);
    d.device = std::move(device);
    d.node = std::move(node);
    d.line = line;
    stamp_instance_path(d);
    report_.add(std::move(d));
  }

  void emit_device(const char* rule, std::string message,
                   const Device& device) {
    emit(rule, std::move(message), device.name(), "",
         device_line(device.name()));
  }

  void emit_node(const char* rule, std::string message, NodeId node) {
    const std::string& name = circuit_.node_name(node);
    emit(rule, std::move(message), "", name, node_line(name));
  }

  // ---- float-node: degree-0/1 nodes --------------------------------------
  void check_float_nodes() {
    for (NodeId n = 1; n < graph_->node_count(); ++n) {
      const auto& pins = graph_->pins(n);
      if (pins.empty()) {
        emit_node(rules::kFloatNode,
                  "node '" + circuit_.node_name(n) +
                      "' is not attached to any device pin",
                  n);
        floating_nodes_.insert(circuit_.node_name(n));
      } else if (pins.size() == 1) {
        floating_nodes_.insert(circuit_.node_name(n));
        emit_node(rules::kFloatNode,
                  "node '" + circuit_.node_name(n) +
                      "' is attached to a single device pin ('" +
                      pins[0].device->name() + "' " + pins[0].role + ")",
                  n);
      }
    }
  }

  // ---- no-dc-path: DC-isolated islands, one diagnostic per island --------
  void check_dc_paths() {
    std::map<std::size_t, std::vector<NodeId>> islands;
    for (NodeId n = 1; n < graph_->node_count(); ++n) {
      if (!graph_->dc_reaches_ground(n)) {
        islands[graph_->dc_component(n)].push_back(n);
      }
    }
    for (const auto& [root, nodes] : islands) {
      (void)root;
      for (NodeId n : nodes) floating_nodes_.insert(circuit_.node_name(n));
      std::ostringstream names;
      const std::size_t shown = std::min<std::size_t>(nodes.size(), 5);
      for (std::size_t i = 0; i < shown; ++i) {
        if (i) names << ", ";
        names << '\'' << circuit_.node_name(nodes[i]) << '\'';
      }
      if (nodes.size() > shown) {
        names << " (+" << nodes.size() - shown << " more)";
      }
      int line = -1;
      for (NodeId n : nodes) {
        const int l = node_line(circuit_.node_name(n));
        if (l >= 0 && (line < 0 || l < line)) line = l;
      }
      emit(rules::kNoDcPath,
           "node" + std::string(nodes.size() > 1 ? "s " : " ") + names.str() +
               " ha" + (nodes.size() > 1 ? "ve" : "s") +
               " no DC conduction path to ground (capacitors and current "
               "sources are open at DC); the MNA operating point is singular",
           "", circuit_.node_name(nodes.front()), line);
    }
  }

  // ---- vsource-shorted / vsource-loop ------------------------------------
  void check_voltage_branches() {
    for (const auto& dev : circuit_.devices()) {
      const auto vb = dev->voltage_branch();
      if (vb && vb->first == vb->second) {
        emit_device(rules::kVsourceShorted,
                    "voltage-defined branch '" + dev->name() +
                        "' has both terminals on node '" +
                        circuit_.node_name(vb->first) +
                        "'; its branch equation is unsatisfiable",
                    *dev);
      }
    }
    for (const Device* dev : graph_->voltage_loop_closers()) {
      emit_device(rules::kVsourceLoop,
                  "voltage-defined branch '" + dev->name() +
                      "' closes a loop of voltage sources (parallel or "
                      "cyclic V/E devices); the MNA matrix is singular",
                  *dev);
    }
  }

  // ---- self-connected ----------------------------------------------------
  void check_self_connected() {
    for (const auto& dev : circuit_.devices()) {
      if (dev->voltage_branch()) continue;  // vsource-shorted covers these
      if (const auto* fet = dynamic_cast<const spice::FinFETElement*>(
              dev.get())) {
        if (fet->drain() == fet->source()) {
          emit_device(rules::kSelfConnected,
                      "FET '" + dev->name() +
                          "' has drain and source on the same node; the "
                          "channel can never conduct",
                      *dev);
        }
        continue;
      }
      const auto terms = dev->terminals();
      if (terms.size() == 2 && terms[0].node == terms[1].node) {
        emit_device(rules::kSelfConnected,
                    "device '" + dev->name() +
                        "' has both terminals on node '" +
                        circuit_.node_name(terms[0].node) +
                        "'; its stamps cancel and it carries no signal",
                    *dev);
      }
    }
  }


  // ---- structural-singular / dangling-branch-equation / disconnected-block
  // Symbolic MNA analysis of the DC stamp pattern (gmin excluded: it would
  // put every node diagonal in the pattern and mask exactly these defects).
  void check_structure() {
    if (!options_.enabled(rules::kStructuralSingular) &&
        !options_.enabled(rules::kDanglingBranchEquation) &&
        !options_.enabled(rules::kDisconnectedBlock)) {
      return;
    }
    const spice::StructuralReport rep =
        spice::analyze_structure(circuit_, /*dc=*/true);
    constexpr std::size_t kMaxPerCategory = 8;

    std::unordered_set<std::string> dangling_unknowns;
    for (const auto& db : rep.dangling_branches) {
      dangling_unknowns.insert(db.unknown);
      const char* what = db.empty_row && db.empty_col ? "row and column"
                         : db.empty_row              ? "row"
                                                     : "column";
      emit(rules::kDanglingBranchEquation,
           "branch equation " + db.unknown + " of device '" + db.device +
               "' has an empty matrix " + std::string(what) +
               "; the branch current is structurally undetermined",
           db.device, "", device_line(db.device));
    }

    auto emit_defect = [&](const spice::StructuralDefect& d, bool equation) {
      if (dangling_unknowns.count(d.unknown)) return;  // reported above
      // A node no device touches is already reported (with better context)
      // by float-node / no-dc-path; repeating it here would double-report
      // every declared-but-unused node.
      if (!d.node.empty() && d.devices.empty()) return;
      std::ostringstream msg;
      msg << (equation ? "equation of " : "unknown ") << d.unknown
          << (equation
                  ? " can never be pivoted (no unknown left to solve it for)"
                  : " is structurally undetermined (no equation can be "
                    "solved for it)");
      if (!d.devices.empty()) {
        msg << "; devices touching it:";
        const std::size_t shown =
            std::min<std::size_t>(d.devices.size(), kMaxPerCategory);
        for (std::size_t i = 0; i < shown; ++i) msg << " '" << d.devices[i] << "'";
        if (d.devices.size() > shown) {
          msg << " (+" << d.devices.size() - shown << " more)";
        }
      }
      msg << "; the MNA matrix is singular for every device value";
      const std::string device = d.devices.empty() ? "" : d.devices.front();
      int line = d.node.empty() ? -1 : node_line(d.node);
      if (line < 0 && !device.empty()) line = device_line(device);
      emit(rules::kStructuralSingular, msg.str(), device, d.node, line);
    };
    std::size_t emitted = 0;
    for (const auto& d : rep.undetermined_unknowns) {
      if (emitted >= kMaxPerCategory) break;
      emit_defect(d, /*equation=*/false);
      ++emitted;
    }
    emitted = 0;
    for (const auto& d : rep.unsolvable_equations) {
      if (emitted >= kMaxPerCategory) break;
      emit_defect(d, /*equation=*/true);
      ++emitted;
    }

    for (const auto& block : rep.floating_blocks) {
      // "V(name)" unknowns name the member nodes; power-domain-floating
      // skips rails already covered by this block diagnostic.
      for (const auto& unk : block.unknowns) {
        if (unk.size() > 3 && unk.compare(0, 2, "V(") == 0 &&
            unk.back() == ')') {
          floating_nodes_.insert(unk.substr(2, unk.size() - 3));
        }
      }
      std::ostringstream msg;
      msg << "equation block {";
      const std::size_t shown =
          std::min<std::size_t>(block.unknowns.size(), 5);
      for (std::size_t i = 0; i < shown; ++i) {
        if (i) msg << ", ";
        msg << block.unknowns[i];
      }
      if (block.unknowns.size() > shown) {
        msg << ", +" << block.unknowns.size() - shown << " more";
      }
      msg << "} has no ground reference; its KCL rows sum to zero and the "
             "block is numerically singular without gmin";
      const std::string device =
          block.devices.empty() ? "" : block.devices.front();
      int line = -1;
      for (const auto& dev : block.devices) {
        const int l = device_line(dev);
        if (l >= 0 && (line < 0 || l < line)) line = l;
      }
      emit(rules::kDisconnectedBlock, msg.str(), device, "", line);
    }
  }

  // ---- nonphysical-value -------------------------------------------------
  void check_values() {
    for (const auto& dev : circuit_.devices()) {
      if (const auto* r = dynamic_cast<const spice::Resistor*>(dev.get())) {
        check_positive(*dev, "resistance", r->resistance());
      } else if (const auto* c =
                     dynamic_cast<const spice::Capacitor*>(dev.get())) {
        check_positive(*dev, "capacitance", c->capacitance());
      } else if (const auto* l =
                     dynamic_cast<const spice::Inductor*>(dev.get())) {
        check_positive(*dev, "inductance", l->inductance());
      } else if (const auto* fet = dynamic_cast<const spice::FinFETElement*>(
                     dev.get())) {
        const auto& p = fet->model().params();
        check_positive(*dev, "fin count", static_cast<double>(p.fin_count));
        check_positive(*dev, "channel length", p.channel_length);
      } else if (const auto* mtj =
                     dynamic_cast<const spice::MTJElement*>(dev.get())) {
        const auto& p = mtj->model().params();
        check_positive(*dev, "tau0", p.tau0);
        check_positive(*dev, "diameter", p.diameter);
      } else if (const auto* diode =
                     dynamic_cast<const spice::Diode*>(dev.get())) {
        check_positive(*dev, "saturation current",
                       diode->saturation_current());
      }
    }
  }

  void check_positive(const Device& dev, const char* what, double value) {
    if (value > 0.0) return;
    std::ostringstream msg;
    msg << "device '" << dev.name() << "' has non-physical " << what << " "
        << value << " (must be > 0)";
    emit_device(rules::kNonphysicalValue, msg.str(), dev);
  }

  // ---- paper-specific topology -------------------------------------------
  void check_sram_topology() {
    std::vector<const spice::FinFETElement*> fets;
    std::vector<const spice::MTJElement*> mtjs;
    for (const auto& dev : circuit_.devices()) {
      if (const auto* f =
              dynamic_cast<const spice::FinFETElement*>(dev.get())) {
        fets.push_back(f);
      } else if (const auto* m =
                     dynamic_cast<const spice::MTJElement*>(dev.get())) {
        mtjs.push_back(m);
      }
    }

    // mtj-orientation: in the paper's Fig. 2 store branch the MTJ *free*
    // layer faces the FET (storage-node) side.  A pinned layer on a channel
    // node with the free layer elsewhere means the store current polarity is
    // inverted relative to the data being stored.
    std::unordered_set<NodeId> channel_nodes;
    for (const auto* f : fets) {
      channel_nodes.insert(f->drain());
      channel_nodes.insert(f->source());
    }
    for (const auto* m : mtjs) {
      if (channel_nodes.count(m->pinned_node()) &&
          !channel_nodes.count(m->free_node())) {
        emit_device(
            rules::kMtjOrientation,
            "MTJ '" + m->name() +
                "' has its pinned layer on the FET store branch and its "
                "free layer elsewhere; the paper's topology puts the free "
                "layer on the storage-node side (store polarity inverted)",
            *m);
      }
    }

    // sram-cross-coupling: a full NV-SRAM cell (>= 2 MTJs, >= 6 FETs) must
    // contain at least one cross-coupled inverter pair: two FETs where each
    // gate is the other's drain.
    if (mtjs.size() >= 2 && fets.size() >= 6) {
      bool coupled = false;
      for (std::size_t i = 0; i < fets.size() && !coupled; ++i) {
        for (std::size_t j = i + 1; j < fets.size() && !coupled; ++j) {
          coupled = fets[i]->gate() == fets[j]->drain() &&
                    fets[j]->gate() == fets[i]->drain() &&
                    fets[i]->gate() != fets[i]->drain();
        }
      }
      if (!coupled) {
        emit(rules::kSramCrossCoupling,
             "circuit carries " + std::to_string(mtjs.size()) +
                 " MTJ retention devices and " + std::to_string(fets.size()) +
                 " FETs but no cross-coupled inverter pair; the 6T storage "
                 "core appears mis-wired",
             "", "", -1);
      }
    }
  }

  // ---- protocol-* / units-*: temporal + dimensional passes ---------------
  // Timeline extraction and the protocol state machine live in
  // lint/temporal/; here we only run them over the parsed netlist and filter
  // through the shared enable/severity options.
  void check_temporal() {
    const temporal::Timeline timeline = temporal::extract_timeline(*netlist_);
    temporal::TemporalOptions topt;
    if (const auto& arch = netlist_->arch_annotation()) {
      // Validated at parse time; unknown values never reach the linter.
      if (auto a = temporal::arch_from_string(*arch)) topt.arch = *a;
    }
    add_filtered(temporal::check_timeline(timeline, topt));
    add_filtered(temporal::check_netlist_units(*netlist_));
    check_power(timeline);
    check_dataflow(timeline);
  }

  // ---- data-*: retention-state dataflow over the schedule ----------------
  // Abstract interpretation of the per-cell latch/MTJ generation state
  // (lint/dataflow/) against the off windows the power pass derives.
  void check_dataflow(const temporal::Timeline& timeline) {
    dataflow::DataflowOptions options;
    add_filtered(
        dataflow::check_dataflow(timeline, options, &circuit_, netlist_));
  }

  // ---- power-*: domain extraction + off-window abstract interpretation ----
  // Shares the timeline already extracted for the protocol pass; the
  // structural passes above fill floating_nodes_ first, so the
  // power-domain-floating rule dedupes against float-node / no-dc-path /
  // disconnected-block instead of double-reporting one defect.
  void check_power(const temporal::Timeline& timeline) {
    power::PowerCheckOptions options;
    options.already_reported_floating = floating_nodes_;
    add_filtered(power::check_power(circuit_, timeline, netlist_, options));
  }

  void add_filtered(std::vector<Diagnostic> diags) {
    for (auto& d : diags) {
      if (!options_.enabled(d.rule)) continue;
      if (d.severity < options_.min_severity) continue;
      stamp_instance_path(d);
      report_.add(std::move(d));
    }
  }

  // ---- card-unresolved ---------------------------------------------------
  void check_cards() {
    if (const auto& dc = netlist_->dc_card()) {
      Device* src = circuit_.find_device(dc->source);
      if (src == nullptr) {
        emit(rules::kCardUnresolved,
             ".dc sweeps unknown source '" + dc->source + "'", dc->source, "",
             -1);
      } else if (dynamic_cast<spice::VSource*>(src) == nullptr &&
                 dynamic_cast<spice::ISource*>(src) == nullptr) {
        emit(rules::kCardUnresolved,
             ".dc source '" + dc->source + "' is not an independent V/I "
             "source",
             dc->source, "", device_line(dc->source));
      }
    }
    if (const auto& ac = netlist_->ac_card()) {
      if (circuit_.find_device(ac->source) == nullptr) {
        emit(rules::kCardUnresolved,
             ".ac references unknown source '" + ac->source + "'", ac->source,
             "", -1);
      }
    }
  }

  // ---- probe-unresolved --------------------------------------------------
  void check_probes() {
    std::unordered_set<const Device*> owned;
    for (const auto& dev : circuit_.devices()) owned.insert(dev.get());
    for (const auto& probe : netlist_->probes()) {
      if (probe.kind == spice::Probe::Kind::kNodeVoltage) {
        if (probe.node >= circuit_.node_count()) {
          emit(rules::kProbeUnresolved,
               "probe '" + probe.label +
                   "' references a node outside this circuit",
               "", "", -1);
        }
      } else if (probe.device == nullptr || !owned.count(probe.device)) {
        emit(rules::kProbeUnresolved,
             "probe '" + probe.label +
                 "' references a device that is not part of this circuit",
             "", "", -1);
      }
    }
  }

  const Circuit& circuit_;
  const ParsedNetlist* netlist_;
  const LintOptions& options_;
  LintPasses passes_;
  std::optional<CircuitGraph> graph_;
  LintReport report_;
  // Nodes already reported floating by the structural passes (float-node,
  // no-dc-path, disconnected-block); consumed by the power pass for dedupe.
  std::unordered_set<std::string> floating_nodes_;
};

}  // namespace

LintReport lint_circuit(const Circuit& circuit, const LintOptions& options) {
  return Linter(circuit, nullptr, options, LintPasses{}).run();
}

LintReport lint_netlist(const ParsedNetlist& netlist,
                        const LintOptions& options) {
  return Linter(netlist.circuit(), &netlist, options, LintPasses{}).run();
}

LintReport lint_netlist_passes(const ParsedNetlist& netlist,
                               const LintOptions& options, LintPasses passes) {
  return Linter(netlist.circuit(), &netlist, options, std::move(passes)).run();
}

}  // namespace nvsram::lint
