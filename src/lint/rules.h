// Rule catalog and lint options.
//
// Every check the linter performs has a stable string id listed here, with
// its default severity and a one-line summary (`nvlint --rules` and
// docs/LINT.md render this table).  Each entry also carries the one-paragraph
// explanation and minimal triggering example behind `nvlint --explain=<id>`,
// plus the name of its seeded negative fixture under tests/netlists_bad/
// (the meta-lint test holds the catalog, the fixtures, and docs/LINT.md in
// sync).  Tests that intentionally build degenerate circuits opt out per
// rule through LintOptions::disable().
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "lint/diagnostic.h"

namespace nvsram::lint {

namespace rules {
// Circuit topology.
inline constexpr const char* kFloatNode = "float-node";
inline constexpr const char* kNoDcPath = "no-dc-path";
inline constexpr const char* kVsourceLoop = "vsource-loop";
inline constexpr const char* kVsourceShorted = "vsource-shorted";
inline constexpr const char* kSelfConnected = "self-connected";
// Device parameters.
inline constexpr const char* kNonphysicalValue = "nonphysical-value";
// Netlist cards.
inline constexpr const char* kProbeUnresolved = "probe-unresolved";
inline constexpr const char* kCardUnresolved = "card-unresolved";
inline constexpr const char* kSubcktUnusedPort = "subckt-unused-port";
// Paper-specific topology.
inline constexpr const char* kSramCrossCoupling = "sram-cross-coupling";
inline constexpr const char* kMtjOrientation = "mtj-orientation";
// Structural MNA analysis (spice/structural_analysis.h): symbolic proofs on
// the stamp-position pattern, gmin excluded.
inline constexpr const char* kStructuralSingular = "structural-singular";
inline constexpr const char* kDisconnectedBlock = "disconnected-block";
inline constexpr const char* kDanglingBranchEquation = "dangling-branch-equation";
// Temporal protocol analysis (lint/temporal/): static checks on the stimulus
// schedule against the power-gating protocol of each architecture.
inline constexpr const char* kProtocolStoreIncomplete = "protocol-store-incomplete";
inline constexpr const char* kProtocolStoreMissing = "protocol-store-missing";
inline constexpr const char* kProtocolStoreGateOverlap = "protocol-store-gate-overlap";
inline constexpr const char* kProtocolRestoreOrder = "protocol-restore-order";
inline constexpr const char* kProtocolShutdownShort = "protocol-shutdown-short";
inline constexpr const char* kProtocolClockStore = "protocol-clock-store";
inline constexpr const char* kProtocolSleepRetention = "protocol-sleep-retention";
inline constexpr const char* kProtocolPwlNonmonotonic = "protocol-pwl-nonmonotonic";
inline constexpr const char* kProtocolWlPrechargeOverlap =
    "protocol-wl-precharge-overlap";
// Power-intent analysis (lint/power/): domain extraction plus off-window
// abstract interpretation over the stimulus schedule.
inline constexpr const char* kPowerWlInOffWindow = "power-wl-in-off-window";
inline constexpr const char* kPowerSneakPath = "power-sneak-path";
inline constexpr const char* kPowerMissingIsolation = "power-missing-isolation";
inline constexpr const char* kPowerDomainFloating = "power-domain-floating";
inline constexpr const char* kPowerSharedRailConflict =
    "power-shared-rail-conflict";
// Retention-data dataflow analysis (lint/dataflow/): abstract interpretation
// of the per-cell data state (latch vs MTJ contents) across the schedule's
// write / store / gate-off / restore / read events.
inline constexpr const char* kDataLostInOffWindow = "data-lost-in-off-window";
inline constexpr const char* kDataStaleRestore = "data-stale-restore";
inline constexpr const char* kDataReadBeforeRestore = "data-read-before-restore";
inline constexpr const char* kDataRedundantStore = "data-redundant-store";
inline constexpr const char* kDataStoreTruncated = "data-store-truncated";
// Dimensional / range analysis over parameters and parsed netlist values.
inline constexpr const char* kUnitsCurrentDensity = "units-current-density";
inline constexpr const char* kUnitsTimeScale = "units-time-scale";
inline constexpr const char* kUnitsVoltageRange = "units-voltage-range";
inline constexpr const char* kUnitsDimension = "units-dimension";
}  // namespace rules

struct RuleInfo {
  const char* id;
  const char* family;  // "topology", "params", ..., "protocol", "data"
  Severity severity;
  const char* summary;
  // One-paragraph explanation (`nvlint --explain=<id>`): what the rule
  // proves and why a violation matters.
  const char* description;
  // Minimal triggering example (netlist snippet, or an API note for rules
  // that only programmatic post-editing can reach).
  const char* example;
  // Seeded negative fixture under tests/netlists_bad/ that fires this rule;
  // "" for rules unreachable from netlist text (the meta-lint test pins the
  // exact allowlist of those).
  const char* fixture;
};

// All known rules, in documentation order.
const std::vector<RuleInfo>& rule_catalog();

// Catalog entry for a rule id; nullptr for unknown ids.
const RuleInfo* find_rule(const std::string& rule_id);

// Default severity for a rule id; kError for unknown ids (conservative).
Severity default_severity(const std::string& rule_id);

// Family name for a rule id; "" for unknown ids.
const char* rule_family(const std::string& rule_id);

struct LintOptions {
  // Rule ids to skip entirely.
  std::unordered_set<std::string> disabled;

  // Diagnostics below this severity are dropped from the report.
  Severity min_severity = Severity::kInfo;

  LintOptions& disable(const std::string& rule_id) {
    disabled.insert(rule_id);
    return *this;
  }
  bool enabled(const std::string& rule_id) const {
    return disabled.find(rule_id) == disabled.end();
  }

  // Stable hash over everything that changes a lint verdict (disabled set,
  // severity floor).  Keys the lint-result cache together with the netlist
  // content hash (see lint/lint_cache.h).
  std::uint64_t fingerprint() const;
};

}  // namespace nvsram::lint
