// Rule catalog and lint options.
//
// Every check the linter performs has a stable string id listed here, with
// its default severity and a one-line summary (`nvlint --rules` and
// docs/LINT.md render this table).  Tests that intentionally build degenerate
// circuits opt out per rule through LintOptions::disable().
#pragma once

#include <string>
#include <unordered_set>
#include <vector>

#include "lint/diagnostic.h"

namespace nvsram::lint {

namespace rules {
// Circuit topology.
inline constexpr const char* kFloatNode = "float-node";
inline constexpr const char* kNoDcPath = "no-dc-path";
inline constexpr const char* kVsourceLoop = "vsource-loop";
inline constexpr const char* kVsourceShorted = "vsource-shorted";
inline constexpr const char* kSelfConnected = "self-connected";
// Device parameters.
inline constexpr const char* kNonphysicalValue = "nonphysical-value";
// Netlist cards.
inline constexpr const char* kProbeUnresolved = "probe-unresolved";
inline constexpr const char* kCardUnresolved = "card-unresolved";
inline constexpr const char* kSubcktUnusedPort = "subckt-unused-port";
// Paper-specific topology.
inline constexpr const char* kSramCrossCoupling = "sram-cross-coupling";
inline constexpr const char* kMtjOrientation = "mtj-orientation";
// Structural MNA analysis (spice/structural_analysis.h): symbolic proofs on
// the stamp-position pattern, gmin excluded.
inline constexpr const char* kStructuralSingular = "structural-singular";
inline constexpr const char* kDisconnectedBlock = "disconnected-block";
inline constexpr const char* kDanglingBranchEquation = "dangling-branch-equation";
}  // namespace rules

struct RuleInfo {
  const char* id;
  Severity severity;
  const char* summary;
};

// All known rules, in documentation order.
const std::vector<RuleInfo>& rule_catalog();

// Default severity for a rule id; kError for unknown ids (conservative).
Severity default_severity(const std::string& rule_id);

struct LintOptions {
  // Rule ids to skip entirely.
  std::unordered_set<std::string> disabled;

  // Diagnostics below this severity are dropped from the report.
  Severity min_severity = Severity::kInfo;

  LintOptions& disable(const std::string& rule_id) {
    disabled.insert(rule_id);
    return *this;
  }
  bool enabled(const std::string& rule_id) const {
    return disabled.find(rule_id) == disabled.end();
  }
};

}  // namespace nvsram::lint
