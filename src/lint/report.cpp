#include "lint/report.h"

#include <sstream>

namespace nvsram::lint {

std::size_t LintReport::count(Severity s) const {
  std::size_t n = 0;
  for (const auto& d : diags_) {
    if (d.severity == s) ++n;
  }
  return n;
}

std::vector<Diagnostic> LintReport::by_rule(const std::string& rule_id) const {
  std::vector<Diagnostic> out;
  for (const auto& d : diags_) {
    if (d.rule == rule_id) out.push_back(d);
  }
  return out;
}

std::string LintReport::format() const {
  if (diags_.empty()) return "";
  std::ostringstream ss;
  for (const auto& d : diags_) ss << d.format() << '\n';
  ss << count(Severity::kError) << " error(s), " << count(Severity::kWarning)
     << " warning(s), " << count(Severity::kInfo) << " info(s)";
  return ss.str();
}

namespace {
std::string error_what(const LintReport& report) {
  return "netlist failed lint with " +
         std::to_string(report.count(Severity::kError)) + " error(s):\n" +
         report.format();
}
}  // namespace

LintError::LintError(LintReport report)
    : std::runtime_error(error_what(report)), report_(std::move(report)) {}

}  // namespace nvsram::lint
