#include "lint/rules.h"

namespace nvsram::lint {

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> kCatalog = {
      {rules::kFloatNode, "topology", Severity::kWarning,
       "node is attached to exactly one device pin"},
      {rules::kNoDcPath, "topology", Severity::kError,
       "node has no DC conduction path to ground (MNA matrix is singular "
       "without gmin)"},
      {rules::kVsourceLoop, "topology", Severity::kError,
       "loop of voltage-defined branches (parallel or cyclic V/E devices)"},
      {rules::kVsourceShorted, "topology", Severity::kError,
       "voltage-defined branch with both terminals on the same node"},
      {rules::kSelfConnected, "topology", Severity::kWarning,
       "device with all conducting terminals tied to one node (stamps cancel)"},
      {rules::kNonphysicalValue, "params", Severity::kError,
       "non-physical device parameter (R/C/L <= 0, fins <= 0, MTJ tau0 <= 0)"},
      {rules::kProbeUnresolved, "cards", Severity::kError,
       ".probe target does not resolve to a node/device of this circuit"},
      {rules::kCardUnresolved, "cards", Severity::kError,
       ".dc/.ac card names a source that does not exist"},
      {rules::kSubcktUnusedPort, "cards", Severity::kWarning,
       ".subckt port is never referenced inside the definition body"},
      {rules::kSramCrossCoupling, "paper", Severity::kWarning,
       "MTJ-retention circuit lacks a cross-coupled inverter pair (6T core "
       "mis-wired?)"},
      {rules::kMtjOrientation, "paper", Severity::kWarning,
       "MTJ pinned layer faces the FET store branch (store polarity inverted "
       "vs the paper's Fig. 2 topology)"},
      {rules::kStructuralSingular, "structural", Severity::kError,
       "MNA matrix is structurally singular: some equation/unknown can never "
       "be pivoted, for every assignment of device values"},
      {rules::kDanglingBranchEquation, "structural", Severity::kError,
       "branch-current equation with an empty row or column (e.g. a voltage "
       "source strapped between grounds)"},
      {rules::kDisconnectedBlock, "structural", Severity::kWarning,
       "connected equation block with no ground reference (KCL rows sum to "
       "zero: numerically singular without gmin)"},
      {rules::kProtocolStoreIncomplete, "protocol", Severity::kError,
       "store step shorter than the MTJ write-pulse width at the configured "
       "overdrive (CIMS switch cannot complete)"},
      {rules::kProtocolStoreMissing, "protocol", Severity::kError,
       "power gated off with no completed MTJ store since the previous "
       "power-up (cell contents lost)"},
      {rules::kProtocolStoreGateOverlap, "protocol", Severity::kError,
       "store pulse overlaps the gate-off edge (write current cut mid-store)"},
      {rules::kProtocolRestoreOrder, "protocol", Severity::kError,
       "restore pulse absent at rail recovery, or a word line asserts before "
       "the restore completes"},
      {rules::kProtocolShutdownShort, "protocol", Severity::kWarning,
       "power-off window too short to complete the collapse/recovery ramps"},
      {rules::kProtocolClockStore, "protocol", Severity::kError,
       "NOF clock period shorter than the per-cycle store pulse"},
      {rules::kProtocolSleepRetention, "protocol", Severity::kError,
       "sleep rail level below the bistable retention floor (data lost "
       "without a store)"},
      {rules::kProtocolPwlNonmonotonic, "protocol", Severity::kError,
       "PWL time points not strictly increasing (later points shadow earlier "
       "ones)"},
      {rules::kProtocolWlPrechargeOverlap, "protocol", Severity::kWarning,
       "word line asserted while the bitline precharge is still active"},
      {rules::kPowerWlInOffWindow, "power", Severity::kError,
       "word line asserts while the power domain holding the accessed cell "
       "is gated off (access into a collapsed rail)"},
      {rules::kPowerSneakPath, "power", Severity::kError,
       "DC conduction path through a gated-off domain between held nets (the "
       "leakage the power switch was supposed to cut)"},
      {rules::kPowerMissingIsolation, "power", Severity::kWarning,
       "node of a gated domain drives a gate in a still-powered domain with "
       "no isolation clamp (floats to mid-rail during power-off)"},
      {rules::kPowerDomainFloating, "power", Severity::kError,
       ".domain-declared gated rail has no power switch on its supply path "
       "(or no supply path at all)"},
      {rules::kPowerSharedRailConflict, "power", Severity::kWarning,
       "one virtual rail fed by power switches with different gating "
       "schedules (rail stays up whenever either conducts)"},
      {rules::kUnitsCurrentDensity, "units", Severity::kError,
       "MTJ critical current density outside the A/m^2 range (likely entered "
       "in A/cm^2)"},
      {rules::kUnitsTimeScale, "units", Severity::kWarning,
       "schedule time constant outside the ps..ms range plausible for this "
       "technology (likely entered in the wrong SI prefix)"},
      {rules::kUnitsVoltageRange, "units", Severity::kError,
       "bias voltage outside the physical range of the 14 nm FinFET process"},
      {rules::kUnitsDimension, "units", Severity::kError,
       "derived quantity (Ic, store energy) dimensionally inconsistent or "
       "implausible: unit algebra over the parameters does not close"},
  };
  return kCatalog;
}

Severity default_severity(const std::string& rule_id) {
  for (const auto& r : rule_catalog()) {
    if (rule_id == r.id) return r.severity;
  }
  return Severity::kError;
}

const char* rule_family(const std::string& rule_id) {
  for (const auto& r : rule_catalog()) {
    if (rule_id == r.id) return r.family;
  }
  return "";
}

}  // namespace nvsram::lint
