#include "lint/rules.h"

namespace nvsram::lint {

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> kCatalog = {
      {rules::kFloatNode, Severity::kWarning,
       "node is attached to exactly one device pin"},
      {rules::kNoDcPath, Severity::kError,
       "node has no DC conduction path to ground (MNA matrix is singular "
       "without gmin)"},
      {rules::kVsourceLoop, Severity::kError,
       "loop of voltage-defined branches (parallel or cyclic V/E devices)"},
      {rules::kVsourceShorted, Severity::kError,
       "voltage-defined branch with both terminals on the same node"},
      {rules::kSelfConnected, Severity::kWarning,
       "device with all conducting terminals tied to one node (stamps cancel)"},
      {rules::kNonphysicalValue, Severity::kError,
       "non-physical device parameter (R/C/L <= 0, fins <= 0, MTJ tau0 <= 0)"},
      {rules::kProbeUnresolved, Severity::kError,
       ".probe target does not resolve to a node/device of this circuit"},
      {rules::kCardUnresolved, Severity::kError,
       ".dc/.ac card names a source that does not exist"},
      {rules::kSubcktUnusedPort, Severity::kWarning,
       ".subckt port is never referenced inside the definition body"},
      {rules::kSramCrossCoupling, Severity::kWarning,
       "MTJ-retention circuit lacks a cross-coupled inverter pair (6T core "
       "mis-wired?)"},
      {rules::kMtjOrientation, Severity::kWarning,
       "MTJ pinned layer faces the FET store branch (store polarity inverted "
       "vs the paper's Fig. 2 topology)"},
      {rules::kStructuralSingular, Severity::kError,
       "MNA matrix is structurally singular: some equation/unknown can never "
       "be pivoted, for every assignment of device values"},
      {rules::kDanglingBranchEquation, Severity::kError,
       "branch-current equation with an empty row or column (e.g. a voltage "
       "source strapped between grounds)"},
      {rules::kDisconnectedBlock, Severity::kWarning,
       "connected equation block with no ground reference (KCL rows sum to "
       "zero: numerically singular without gmin)"},
  };
  return kCatalog;
}

Severity default_severity(const std::string& rule_id) {
  for (const auto& r : rule_catalog()) {
    if (rule_id == r.id) return r.severity;
  }
  return Severity::kError;
}

}  // namespace nvsram::lint
