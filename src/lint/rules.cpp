#include "lint/rules.h"

#include <algorithm>

namespace nvsram::lint {

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> kCatalog = {
      {rules::kFloatNode, "topology", Severity::kWarning,
       "node is attached to exactly one device pin",
       "A node referenced by exactly one device pin (or by none) cannot "
       "carry current: whatever the single pin drives into it has nowhere "
       "to go, so the connection is almost certainly a typo'd node name. "
       "The solver would still run (gmin ties the node down) but the device "
       "is electrically dead.",
       "V1 a 0 DC 1\nR1 a b 1k\nR2 a 0 1k\n* 'b' touches only R1: floating",
       "bad_float_node.cir"},
      {rules::kNoDcPath, "topology", Severity::kError,
       "node has no DC conduction path to ground (MNA matrix is singular "
       "without gmin)",
       "Capacitors and current sources are open circuits at DC, so a node "
       "reachable from ground only through them has an undefined operating "
       "point: the MNA matrix is singular and the DC solution depends on "
       "gmin leakage instead of the circuit. Give every node a resistive / "
       "channel path to a rail.",
       "V1 a 0 DC 1\nR1 a 0 1k\nC1 a x 1p\nR2 x y 1k\nC2 y 0 1p\n"
       "* x,y only reach ground through capacitors",
       "bad_no_dc_path.cir"},
      {rules::kVsourceLoop, "topology", Severity::kError,
       "loop of voltage-defined branches (parallel or cyclic V/E devices)",
       "Two voltage sources in parallel (or any cycle of voltage-defined "
       "branches) over-determine the loop voltage: unless the values agree "
       "exactly, KVL has no solution, and even when they agree the branch "
       "current split is undefined. The MNA matrix is singular either way.",
       "V1 a 0 DC 1\nV2 a 0 DC 1\nR1 a 0 1k\n* V1 || V2 closes a loop",
       "bad_vsource_loop.cir"},
      {rules::kVsourceShorted, "topology", Severity::kError,
       "voltage-defined branch with both terminals on the same node",
       "A voltage source with both terminals on one node demands a nonzero "
       "potential difference between a node and itself; its branch equation "
       "is unsatisfiable (or degenerate at V=0) and the branch current is "
       "undefined. Usually a copy-paste error in the node names.",
       "V1 a a DC 1\nR1 a 0 1k\nV2 a 0 DC 1\n* V1's terminals coincide",
       "bad_vsource_shorted.cir"},
      {rules::kSelfConnected, "topology", Severity::kWarning,
       "device with all conducting terminals tied to one node (stamps cancel)",
       "A two-terminal device with both pins on one node, or a FET with "
       "drain and source shorted together, stamps equal and opposite "
       "entries that cancel: the device carries no signal and contributes "
       "nothing to the solution. It is dead weight, and almost always a "
       "mis-typed node.",
       "V1 a 0 DC 1\nR2 a 0 1k\nR1 a a 1k\n* R1's stamps cancel",
       "bad_self_connected.cir"},
      {rules::kNonphysicalValue, "params", Severity::kError,
       "non-physical device parameter (R/C/L <= 0, fins <= 0, MTJ tau0 <= 0)",
       "A zero or negative resistance, capacitance, inductance, fin count, "
       "channel length, MTJ tau0/diameter, or diode saturation current has "
       "no physical meaning in this technology and usually signals a "
       "dropped SI suffix or sign error. Negative resistance also destroys "
       "the solver's convergence guarantees.",
       "V1 a 0 DC 1\nR1 a 0 -5\n* negative resistance",
       "bad_nonphysical_value.cir"},
      {rules::kProbeUnresolved, "cards", Severity::kError,
       ".probe target does not resolve to a node/device of this circuit",
       "A probe that references a node or device outside the circuit can "
       "never be evaluated. The parser rejects unknown .probe targets at "
       "parse time, so this rule only fires on probes attached through "
       "programmatic post-editing (ParsedNetlist::add_probe with a foreign "
       "device).",
       "// API only: net->add_probe(Probe::device_current(foreign, ...));\n"
       "// the parser rejects '.probe i(Rmissing)' before lint runs",
       ""},
      {rules::kCardUnresolved, "cards", Severity::kError,
       ".dc/.ac card names a source that does not exist",
       "A .dc or .ac analysis card that names a source absent from the "
       "circuit (or names a device that is not an independent V/I source) "
       "would fail at run time after parsing succeeded. The lint pass "
       "rejects the deck before any solve is attempted.",
       "V1 a 0 DC 1\nR1 a 0 1k\n.dc Vmissing 0 1 5",
       "bad_card_unresolved.cir"},
      {rules::kSubcktUnusedPort, "cards", Severity::kWarning,
       ".subckt port is never referenced inside the definition body",
       "A subcircuit port that no card in the definition body references is "
       "dead: every instantiation wires a caller node to nothing. Either "
       "the port list is stale or a body line mis-types the port name.",
       ".subckt buf in out vdd\nR1 in out 1k\n.ends\n* 'vdd' never used\n"
       "V1 a 0 DC 1\nVd d 0 DC 1\nX1 a b d buf",
       "bad_subckt_unused_port.cir"},
      {rules::kSramCrossCoupling, "paper", Severity::kWarning,
       "MTJ-retention circuit lacks a cross-coupled inverter pair (6T core "
       "mis-wired?)",
       "A cell carrying two or more MTJ retention devices and at least six "
       "FETs is expected to be an NV-SRAM cell, whose bistable core is a "
       "cross-coupled inverter pair (two FETs where each gate is the "
       "other's drain). When no such pair exists the storage loop is "
       "mis-wired and the cell cannot latch.",
       "* 6 FETs in a chain + 2 MTJs, no FET pair with gate_i = drain_j\n"
       "* and gate_j = drain_i",
       "bad_cross_coupling.cir"},
      {rules::kMtjOrientation, "paper", Severity::kWarning,
       "MTJ pinned layer faces the FET store branch (store polarity inverted "
       "vs the paper's Fig. 2 topology)",
       "In the paper's Fig. 2 store branch the MTJ free layer faces the "
       "storage-node (FET channel) side. An MTJ with its pinned layer on a "
       "channel node and its free layer elsewhere conducts store current "
       "with inverted polarity relative to the data, so every store writes "
       "the complement.",
       "M1 d g 0 nfin\nY1 d x AP\n* pinned terminal 'd' is on the FET "
       "channel;\n* the paper puts the free layer there",
       "bad_mtj_orientation.cir"},
      {rules::kStructuralSingular, "structural", Severity::kError,
       "MNA matrix is structurally singular: some equation/unknown can never "
       "be pivoted, for every assignment of device values",
       "Symbolic analysis of the MNA stamp pattern (gmin excluded) proves "
       "that some equation or unknown can never be pivoted no matter what "
       "numeric values the devices take. The operating point then exists "
       "only by numerical accident (gmin leakage), not by circuit design.",
       "V1 a 0 DC 1\nR1 a 0 1k\nI1 0 x DC 1u\nC1 x 0 1p\n"
       "* V(x) has no DC equation: current source into a capacitor",
       "bad_structural_singular.cir"},
      {rules::kDanglingBranchEquation, "structural", Severity::kError,
       "branch-current equation with an empty row or column (e.g. a voltage "
       "source strapped between grounds)",
       "A voltage-defined device whose branch row or column is empty (both "
       "terminals grounded, for instance) has a structurally undetermined "
       "branch current: no KCL equation constrains it. The device is "
       "either redundant or mis-wired.",
       "V1 0 0 DC 0\nR1 a 0 1k\nV2 a 0 DC 1\n* V1 straps ground to ground",
       "bad_dangling_branch.cir"},
      {rules::kDisconnectedBlock, "structural", Severity::kWarning,
       "connected equation block with no ground reference (KCL rows sum to "
       "zero: numerically singular without gmin)",
       "A connected group of nodes with no DC reference to ground forms an "
       "equation block whose KCL rows sum to zero: the block's absolute "
       "potential is undefined and the solve only succeeds because gmin "
       "leaks it to ground. Reference the island to a rail explicitly.",
       "V1 a 0 DC 1\nR1 a 0 1k\nR2 x y 1k\nC1 x 0 1p\nC2 y 0 1p\n"
       "* {x,y} island has no DC ground reference",
       "bad_disconnected_block.cir"},
      {rules::kProtocolStoreIncomplete, "protocol", Severity::kError,
       "store step shorter than the MTJ write-pulse width at the configured "
       "overdrive (CIMS switch cannot complete)",
       "Each store step (a contiguous CTRL level inside an SR assert) must "
       "last at least tau0/(I/Ic - 1), the precessional CIMS switching time "
       "at the configured store overdrive. A shorter step ends before the "
       "magnetization switches: the store silently fails and the transient "
       "would still look plausible.",
       "* SR asserted for 2 ns against a 6 ns write pulse:\n"
       "Vsr sr 0 PWL(10n 0 10.2n 0.65 12n 0.65 12.2n 0)",
       "bad_store_short.cir"},
      {rules::kProtocolStoreMissing, "protocol", Severity::kError,
       "power gated off with no completed MTJ store since the previous "
       "power-up (cell contents lost)",
       "A write leaves the volatile latch ahead of the MTJ contents. If the "
       "power gate then cuts the rail with no completed store in between, "
       "the written data is unrecoverable. Read-only power cycles are "
       "exempt: the MTJs already hold the data.",
       "* write at 1 ns, gate-off at 60 ns, no SR pulse in between",
       "bad_nof_store_missing.cir"},
      {rules::kProtocolStoreGateOverlap, "protocol", Severity::kError,
       "store pulse overlaps the gate-off edge (write current cut mid-store)",
       "A store begun with power on but still asserted when the gate cuts "
       "the rail loses its write current mid-pulse: the virtual rail "
       "collapses, the CIMS current drops below critical, and the final MTJ "
       "state is indeterminate. The store must complete strictly before "
       "the gate-off edge.",
       "* SR rises at 55 ns, gate-off at 60 ns, SR falls at 70 ns:\n"
       "* the pulse straddles the collapse",
       "bad_store_gate_overlap.cir"},
      {rules::kProtocolRestoreOrder, "protocol", Severity::kError,
       "restore pulse absent at rail recovery, or a word line asserts before "
       "the restore completes",
       "On power-up the cell re-latches from its MTJs only if an SR restore "
       "pulse straddles the rail recovery; without one the core settles to "
       "random data. A word-line access before the restore completes "
       "disturbs the cell while it is still re-developing. Both orderings "
       "break the NVPG wake-up discipline.",
       "* SR pulse ends inside the off window instead of straddling the\n"
       "* recovery edge, or WL rises before the restore de-asserts",
       "bad_restore_order.cir"},
      {rules::kProtocolShutdownShort, "protocol", Severity::kWarning,
       "power-off window too short to complete the collapse/recovery ramps",
       "A power-off window shorter than the rail collapse plus recovery "
       "ramps never actually powers the domain down: the virtual rail sags "
       "and recovers without reaching the cutoff state, so the shutdown "
       "burns transition energy without saving any leakage (advisory).",
       "* gate-off at 60 ns, back on at 61 ns: 1 ns < 2 ns ramp budget",
       "bad_shutdown_short.cir"},
      {rules::kProtocolClockStore, "protocol", Severity::kError,
       "NOF clock period shorter than the per-cycle store pulse",
       "The NOF architecture embeds a store in every access cycle, so the "
       "(stretched) clock period must fit the store pulse. A period "
       "shorter than the pulse cannot schedule the store it promises; the "
       "architecture degenerates to an unprotected cell. The .arch card "
       "pins a netlist to the NOF protocol for this check.",
       "Vvdd vdd 0 DC 0.9\nR1 vdd 0 10k\n.tran 100n\n.arch nof\n"
       "* default 3.3 ns clock cannot fit the 10 ns store pulse",
       "bad_clock_store.cir"},
      {rules::kProtocolSleepRetention, "protocol", Severity::kError,
       "sleep rail level below the bistable retention floor (data lost "
       "without a store)",
       "OSR-style sleep keeps the volatile core alive by holding the rail "
       "above the bistable retention floor. A sleep level below that floor "
       "collapses the static noise margin to zero: the cell loses its data "
       "exactly as if it had been gated off, but with no store protecting "
       "it.",
       "* rail sags to 0.3 V against a 0.45 V retention floor:\n"
       "Vdd vdd 0 PWL(10n 0.9 11n 0.3 50n 0.3 51n 0.9)",
       "bad_sleep_retention.cir"},
      {rules::kProtocolPwlNonmonotonic, "protocol", Severity::kError,
       "PWL time points not strictly increasing (later points shadow earlier "
       "ones)",
       "A PWL waveform whose time points do not strictly increase is "
       "ambiguous: the simulator silently shadows the earlier point, so "
       "the stimulus that runs is not the stimulus that was written. "
       "Almost always a dropped SI prefix in one time value.",
       "Vwl wl 0 PWL(0 0 5n 0.9 3n 0.9 8n 0)\n* 3n after 5n",
       "bad_pwl_nonmonotonic.cir"},
      {rules::kProtocolWlPrechargeOverlap, "protocol", Severity::kWarning,
       "word line asserted while the bitline precharge is still active",
       "The precharge pFETs hold both bitlines at VDD while their gate is "
       "low. A word line that rises before the precharge releases shorts "
       "the cell's pull-downs into the precharge pull-ups for the overlap: "
       "the access fights the precharge, wasting energy and slowing (or "
       "corrupting) the read.",
       "Vpch pch 0 PWL(0 0 12n 0 12.5n 0.9)\n"
       "Vwl wl 0 PULSE(0 0.9 10n 50p 50p 4n)\n* WL up at 10 ns, precharge "
       "active until 12 ns",
       "bad_wl_precharge_overlap.cir"},
      {rules::kPowerWlInOffWindow, "power", Severity::kError,
       "word line asserts while the power domain holding the accessed cell "
       "is gated off (access into a collapsed rail)",
       "An access into a domain whose rail is collapsed reads garbage and "
       "can back-power the domain through the access FETs. The off windows "
       "come from abstract interpretation of the PS gate signals, so the "
       "check needs no transient solve.",
       "* WL pulse at 1000 ns inside the PG off window [60, 2105] ns",
       "bad_wl_in_off_window.cir"},
      {rules::kPowerSneakPath, "power", Severity::kError,
       "DC conduction path through a gated-off domain between held nets (the "
       "leakage the power switch was supposed to cut)",
       "If a resistive path conducts through a gated-off domain between two "
       "externally held nets at different potentials, the domain leaks "
       "exactly the current the power switch was inserted to cut. The "
       "shutdown saves nothing; the Fig. 7-9 energy accounting is invalid "
       "for that deck.",
       "* a resistor bridging VDD to the virtual rail around the PS FET",
       "bad_sneak_path.cir"},
      {rules::kPowerMissingIsolation, "power", Severity::kWarning,
       "node of a gated domain drives a gate in a still-powered domain with "
       "no isolation clamp (floats to mid-rail during power-off)",
       "When its domain powers down, a node driving a gate in a "
       "still-powered domain floats toward mid-rail, biasing the receiver "
       "half-on: crowbar current in the live domain for the whole off "
       "window. UPF-style isolation cells (or a clamp to a held rail) must "
       "break such crossings.",
       "* gated-domain node wired straight to the gate of a FET in the\n"
       "* always-on domain, no clamp",
       "bad_missing_isolation.cir"},
      {rules::kPowerDomainFloating, "power", Severity::kError,
       ".domain-declared gated rail has no power switch on its supply path "
       "(or no supply path at all)",
       "A .domain card declares a rail gated, but domain extraction finds "
       "no power-switch FET on its supply path (or no supply path at all): "
       "the designer's power intent and the topology disagree. Either the "
       "PS device is missing/mis-wired or the annotation is stale.",
       ".domain vvdd core gated\n* but no PG-driven FET feeds vvdd",
       "bad_domain_floating.cir"},
      {rules::kPowerSharedRailConflict, "power", Severity::kWarning,
       "one virtual rail fed by power switches with different gating "
       "schedules (rail stays up whenever either conducts)",
       "A virtual rail fed by two power switches with different gate "
       "schedules is up whenever either switch conducts, so the "
       "intersection of their off windows — not either schedule alone — is "
       "what gates the domain. Usually one switch's gate signal is stale "
       "or mis-wired.",
       "* two header pFETs on vvdd driven by pg1 and pg2 with different\n"
       "* PWL schedules",
       "bad_shared_rail.cir"},
      {rules::kDataLostInOffWindow, "data", Severity::kError,
       "volatile data newer than the MTJ contents is destroyed by a gate-off "
       "(no completed store covers the last write)",
       "The dataflow pass tracks a generation counter for the volatile "
       "latch and the MTJ pair. At each gate-off edge, if the latch "
       "generation is ahead of the nonvolatile generation, the bit that "
       "only the latch held is destroyed by the rail collapse — the "
       "schedule provably loses data regardless of device sizing. A "
       "completed store pulse between the last write and the gate-off "
       "discharges the obligation.",
       "* write at 30 ns after the store at 10 ns, then gate-off at 40 ns:\n"
       "* the second write's bit exists nowhere once the rail collapses",
       "bad_data_lost.cir"},
      {rules::kDataStaleRestore, "data", Severity::kError,
       "restore re-latches MTJ contents older than the data the cell held at "
       "gate-off",
       "A restore copies the MTJ generation into the latch. If the MTJs "
       "hold an older generation than the latch held when the rail "
       "collapsed (a write intervened after the last completed store), the "
       "cell wakes up with stale data and every subsequent read returns "
       "it. This is the delayed symptom of the lost bit; the rule "
       "attributes it to the restore pulse that re-latched the stale "
       "generation.",
       "* write(gen 2) after store(gen 1); gate-off; restore re-latches\n"
       "* gen 1: stale",
       "bad_data_stale_restore.cir"},
      {rules::kDataReadBeforeRestore, "data", Severity::kError,
       "read of a cell whose latch state is LOST (powered up again, but no "
       "restore has re-latched the MTJ contents)",
       "After a gate-off the latch state is LOST until a restore pulse "
       "re-latches the MTJ contents. A word-line read in the LOST state "
       "returns whatever the core happened to settle into at power-up — "
       "random data that looks like a valid read. The restore must "
       "complete before the first access.",
       "* gate-off [40, 80] ns with no SR pulse at the recovery edge,\n"
       "* then WL read at 90 ns",
       "bad_data_read_before_restore.cir"},
      {rules::kDataRedundantStore, "data", Severity::kWarning,
       "store pulse writes a generation the MTJs already hold (pure energy "
       "waste, advisory)",
       "A store whose data generation equals what the MTJs already hold "
       "switches nothing: every joule of its CIMS write current is wasted. "
       "The advisory quantifies the waste with the per-store energy from "
       "the characterization cache when one is available for the current "
       "parameter point. Common after restructuring a schedule that once "
       "had a write between the stores.",
       "* two SR store pulses with no write between them: the second is\n"
       "* redundant",
       "bad_data_redundant_store.cir"},
      {rules::kDataStoreTruncated, "data", Severity::kError,
       "store pulse shorter than the MTJ switching time (the dataflow state "
       "keeps the old nonvolatile generation)",
       "A store pulse shorter than tau0/(I/Ic - 1) ends before the CIMS "
       "switch completes, so the dataflow pass refuses to advance the "
       "nonvolatile generation: downstream gate-offs then report the data "
       "loss this truncation causes. Where protocol-store-incomplete "
       "flags the malformed pulse itself, this rule carries the "
       "consequence into the data-state analysis.",
       "* SR pulse of 4 ns against the 6 ns switching time at the\n"
       "* configured overdrive",
       "bad_data_store_truncated.cir"},
      {rules::kUnitsCurrentDensity, "units", Severity::kError,
       "MTJ critical current density outside the A/m^2 range (likely entered "
       "in A/cm^2)",
       "The MTJ critical current density must land in the A/m^2 range "
       "plausible for a 20 nm junction (1e9..1e12). The paper quotes jc in "
       "A/cm^2 (5e6), which is 5e10 A/m^2; entering the paper's number "
       "unconverted produces a cell whose store current is off by 1e4.",
       "Y1 a b P jc=5e6\n* 5e6 A/m^2 is the paper's A/cm^2 value, "
       "unconverted",
       "bad_jc_units.cir"},
      {rules::kUnitsTimeScale, "units", Severity::kWarning,
       "schedule time constant outside the ps..ms range plausible for this "
       "technology (likely entered in the wrong SI prefix)",
       "Schedule horizons and MTJ switching time scales outside the ps..ms "
       "band cannot be real for this technology: a .tran of 20 ms (or an "
       "MTJ tau0 of microseconds) almost always means a time value was "
       "entered without its SI prefix.",
       "V1 a 0 DC 1\nR1 a 0 1k\n.tran 20m\n* 20 ms horizon: forgot the 'n'?",
       "bad_time_scale.cir"},
      {rules::kUnitsVoltageRange, "units", Severity::kError,
       "bias voltage outside the physical range of the 14 nm FinFET process",
       "Any driver that reaches beyond 1.5 V exceeds the survivable gate "
       "bias of the 14 nm process: the oxide would break down long before "
       "the waveform completes. Values in mV entered as V (or vice versa) "
       "are the usual cause. The check applies only to decks that carry "
       "FETs or MTJs; generic RLC circuits may run at any voltage.",
       "Vg g 0 DC 5\nM1 d g 0 nfin\nVd vd 0 DC 0.9\nR1 vd d 10k\n"
       "* 5 V on a 14 nm gate",
       "bad_voltage_range.cir"},
      {rules::kUnitsDimension, "units", Severity::kError,
       "derived quantity (Ic, store energy) dimensionally inconsistent or "
       "implausible: unit algebra over the parameters does not close",
       "Derived quantities are recomputed with explicit dimensions: "
       "Ic = jc * area must close to amperes and land in the range a "
       "20 nm-class junction can carry; the store energy factor*Ic*VDD*t "
       "must close to joules. A value outside range with consistent "
       "dimensions means some upstream parameter was entered in the wrong "
       "units even though each one looks individually plausible.",
       "Y1 a b P diameter=1n jc=2e9\n* jc in range, but Ic = jc*area is "
       "sub-100 nA",
       "bad_units_dimension.cir"},
  };
  return kCatalog;
}

const RuleInfo* find_rule(const std::string& rule_id) {
  for (const auto& r : rule_catalog()) {
    if (rule_id == r.id) return &r;
  }
  return nullptr;
}

Severity default_severity(const std::string& rule_id) {
  const RuleInfo* r = find_rule(rule_id);
  return r == nullptr ? Severity::kError : r->severity;
}

const char* rule_family(const std::string& rule_id) {
  const RuleInfo* r = find_rule(rule_id);
  return r == nullptr ? "" : r->family;
}

std::uint64_t LintOptions::fingerprint() const {
  // 64-bit FNV-1a; the disabled set hashes in sorted order so insertion
  // order cannot change the key.
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ull;
    }
  };
  std::vector<std::string> ids(disabled.begin(), disabled.end());
  std::sort(ids.begin(), ids.end());
  for (const auto& id : ids) {
    mix(id.data(), id.size());
    const char sep = '\0';
    mix(&sep, 1);
  }
  const int sev = static_cast<int>(min_severity);
  mix(&sev, sizeof(sev));
  return h;
}

}  // namespace nvsram::lint
