// Process-wide lint-result cache.
//
// ParsedNetlist::ensure_lint_ok() runs before every run_* analysis, and a
// sweep re-lints the same unmodified netlist once per operating point even
// though the verdict only depends on the netlist text and the lint options.
// This cache keys a finished LintReport on (netlist content hash, options
// fingerprint):
//
//   - the content hash is FNV-1a over the raw netlist text, computed once at
//     parse time (ParsedNetlist::content_hash()); any mutation through the
//     builder API or the non-const circuit() accessor resets it to 0, and
//     hash 0 is never cached — a post-edited netlist always re-lints;
//   - the options fingerprint is LintOptions::fingerprint(), so disabling a
//     rule or raising the severity floor is a different cache line.
//
// Thread-safe; lookups return the report by value (it is a small diagnostic
// vector) so no pointer into the cache outlives a clear().
#pragma once

#include <cstdint>
#include <optional>

#include "lint/report.h"

namespace nvsram::lint {

// Cached report for (content_hash, options_fp); nullopt on miss or when
// content_hash is 0 (un-cacheable).
std::optional<LintReport> lint_cache_lookup(std::uint64_t content_hash,
                                            std::uint64_t options_fp);

// Stores a finished report; ignored when content_hash is 0.
void lint_cache_store(std::uint64_t content_hash, std::uint64_t options_fp,
                      const LintReport& report);

struct LintCacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t entries = 0;
};

LintCacheStats lint_cache_stats();
void lint_cache_clear();

}  // namespace nvsram::lint
