// Process-wide lint-result cache.
//
// ParsedNetlist::ensure_lint_ok() runs before every run_* analysis, and a
// sweep re-lints the same unmodified netlist once per operating point even
// though the verdict only depends on the netlist text and the lint options.
// This cache keys a finished LintReport on (netlist content hash, options
// fingerprint):
//
//   - the content hash is FNV-1a over the raw netlist text, computed once at
//     parse time (ParsedNetlist::content_hash()); any mutation through the
//     builder API or the non-const circuit() accessor resets it to 0, and
//     hash 0 is never cached — a post-edited netlist always re-lints;
//   - the options fingerprint is LintOptions::fingerprint(), so disabling a
//     rule or raising the severity floor is a different cache line.
//
// Thread-safe; lookups return the report by value (it is a small diagnostic
// vector) so no pointer into the cache outlives a clear().
// A second table holds the hierarchical engine's per-definition summaries
// (lint/hier/summary.h), keyed on SubcktInfo::content_hash alone: a summary
// stores unfiltered diagnostics and facts, so it is valid under every
// LintOptions value.  Definitions repeat across decks (the same cell in a
// 4x4 and a 64x64 array) and across sweep re-lints, so the summary is
// computed once per process per definition text.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "lint/report.h"

namespace nvsram::lint {

namespace hier {
struct DefSummary;
}  // namespace hier

// Cached report for (content_hash, options_fp); nullopt on miss or when
// content_hash is 0 (un-cacheable).
std::optional<LintReport> lint_cache_lookup(std::uint64_t content_hash,
                                            std::uint64_t options_fp);

// Stores a finished report; ignored when content_hash is 0.
void lint_cache_store(std::uint64_t content_hash, std::uint64_t options_fp,
                      const LintReport& report);

// Cached per-definition summary for a SubcktInfo::content_hash; nullptr on
// miss (the subckt hash is never 0, see netlist_parser.h).
std::shared_ptr<const hier::DefSummary> lint_summary_cache_lookup(
    std::uint64_t def_content_hash);

void lint_summary_cache_store(std::uint64_t def_content_hash,
                              std::shared_ptr<const hier::DefSummary> summary);

struct LintCacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t entries = 0;
  // Per-definition summary table (hierarchical engine).
  std::size_t summary_hits = 0;
  std::size_t summary_misses = 0;
  std::size_t summary_entries = 0;
};

LintCacheStats lint_cache_stats();

// Clears both tables and resets the counters.
void lint_cache_clear();

}  // namespace nvsram::lint
