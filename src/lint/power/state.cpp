#include "lint/power/state.h"

#include <algorithm>
#include <cmath>

namespace nvsram::lint::power {

namespace {

using temporal::SignalTimeline;
using temporal::Timeline;
using temporal::Window;

constexpr double kTimeEps = 1e-15;

std::vector<Window> normalize(std::vector<Window> ws) {
  std::sort(ws.begin(), ws.end(),
            [](const Window& a, const Window& b) { return a.t0 < b.t0; });
  std::vector<Window> out;
  for (const Window& w : ws) {
    if (w.t1 - w.t0 <= kTimeEps) continue;
    if (!out.empty() && w.t0 <= out.back().t1 + kTimeEps) {
      out.back().t1 = std::max(out.back().t1, w.t1);
    } else {
      out.push_back(w);
    }
  }
  return out;
}

const SignalTimeline* find_signal(const Timeline& tl, const std::string& name) {
  for (const auto& s : tl.signals) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

}  // namespace

bool DomainSchedule::off_at(double t) const {
  // Half-open containment, matching the Window convention and the interval
  // algebra below: at t1 the recovery ramp has completed, so the rail is up
  // again.  A closed upper bound here would disagree with
  // windows_subtract/windows_union at shared boundaries — an event placed
  // exactly at a recovery edge (adjacent windows [a,b) [b,c)) must belong
  // to the later window only.
  for (const Window& w : off) {
    if (t >= w.t0 && t < w.t1) return true;
  }
  return false;
}

std::vector<Window> windows_intersect(const std::vector<Window>& a,
                                      const std::vector<Window>& b) {
  std::vector<Window> out;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const double t0 = std::max(a[i].t0, b[j].t0);
    const double t1 = std::min(a[i].t1, b[j].t1);
    if (t1 - t0 > kTimeEps) out.push_back({t0, t1});
    if (a[i].t1 < b[j].t1) {
      ++i;
    } else {
      ++j;
    }
  }
  return out;
}

std::vector<Window> windows_union(const std::vector<Window>& a,
                                  const std::vector<Window>& b) {
  std::vector<Window> all = a;
  all.insert(all.end(), b.begin(), b.end());
  return normalize(std::move(all));
}

std::vector<Window> windows_subtract(const std::vector<Window>& a,
                                     const std::vector<Window>& b) {
  std::vector<Window> out;
  for (const Window& w : a) {
    double cursor = w.t0;
    for (const Window& cut : b) {
      if (cut.t1 <= cursor || cut.t0 >= w.t1) continue;
      if (cut.t0 > cursor) out.push_back({cursor, cut.t0});
      cursor = std::max(cursor, cut.t1);
    }
    if (w.t1 - cursor > kTimeEps) out.push_back({cursor, w.t1});
  }
  return normalize(std::move(out));
}

PowerState compute_power_state(const DomainMap& map, const Timeline& timeline,
                               const StateOptions& options) {
  PowerState state;
  state.vdd = options.vdd;
  if (state.vdd <= 0.0) {
    state.vdd = 0.0;
    for (const auto& s : timeline.signals) {
      if (s.role == temporal::SignalRole::kPower) {
        state.vdd = std::max(state.vdd, s.max_level());
      }
    }
    if (state.vdd <= 0.0) state.vdd = 0.9;
  }
  state.threshold = options.on_fraction * state.vdd;

  const double t_stop = timeline.t_stop;
  state.schedules.resize(map.domains.size());
  for (const PowerDomain& d : map.domains) {
    DomainSchedule& sched = state.schedules[static_cast<std::size_t>(d.id)];
    sched.domain = d.id;
    if (d.kind != DomainKind::kGated || t_stop <= 0.0) continue;

    // Off windows of each feeding switch; the rail is down only when every
    // switch is cut, so the domain's own off set is the intersection.
    bool first = true;
    std::vector<Window> own;
    for (const PowerSwitch& sw : d.switches) {
      const SignalTimeline* gate =
          sw.gate_signal.empty() ? nullptr
                                 : find_signal(timeline, sw.gate_signal);
      std::vector<Window> cut;
      if (gate != nullptr) {
        cut = sw.pmos ? gate->windows_above(state.threshold, t_stop)
                      : gate->windows_below(state.threshold, t_stop);
        for (const temporal::Transition& tr : gate->transitions) {
          const double lo = std::min(tr.v0, tr.v1);
          const double hi = std::max(tr.v0, tr.v1);
          if (lo < state.threshold && hi >= state.threshold) {
            sched.transitions.push_back({tr.t0, tr.t1});
          }
        }
      }
      // An unknown gate never proves the rail down: cut stays empty, the
      // intersection collapses, and every off-window rule goes quiet
      // (conservative — no false positives from unmodeled gating).
      sched.switch_off.push_back(cut);
      own = first ? std::move(cut) : windows_intersect(own, cut);
      first = false;
    }
    sched.off = std::move(own);
    // A child rail is also down whenever its supplying domain is.
    if (d.parent >= 0 && d.parent < d.id) {
      sched.off = windows_union(sched.off,
                                state.schedules[static_cast<std::size_t>(
                                                    d.parent)]
                                    .off);
    }
  }
  return state;
}

}  // namespace nvsram::lint::power
