// Power-domain extraction: UPF/CPF-style power intent recovered from the
// circuit topology.
//
// The paper's architectures only make sense when the circuit is correctly
// partitioned into power domains behind the PS power switch: the NVPG/NOF
// store-before-gate-off discipline, the sneak-path-free shutdown, and the
// Fig. 7-9 energy accounting all assume the gated region is exactly what the
// designer thinks it is.  This pass recovers that partition statically:
//
//   * supply sources (role kPower) seed always-on domains,
//   * FETs whose gate is driven by a kPowerGate signal are power switches;
//     the channel side away from the supply seeds a gated domain (its
//     virtual rail, e.g. "vvdd"),
//   * domains grow by reachability over always-conducting devices (R, L,
//     diode, MTJ) and FETs with *undriven* gates (structural rail
//     connections: pull-ups/pull-downs, cross-coupled pairs).  FETs whose
//     gate is a driven signal node (word lines, store enables) are steering
//     switches, not rail wiring, so they bound the domain.
//
// `.domain <node> <name> [gated|always-on]` netlist cards override the
// derived name and pin the designer's intent; the power-domain-floating rule
// fires when a declared-gated rail has no power switch on its supply path.
#pragma once

#include <string>
#include <vector>

#include "spice/device.h"

namespace nvsram::spice {
class Circuit;
class FinFETElement;
class ParsedNetlist;
}  // namespace nvsram::spice

namespace nvsram::lint::power {

enum class DomainKind { kAlwaysOn, kGated };

const char* to_string(DomainKind kind);

// One PS device on a gated domain's supply path.
struct PowerSwitch {
  const spice::FinFETElement* fet = nullptr;
  std::string gate_signal;        // driving source name ("" when undriven)
  spice::NodeId gate_node = spice::kGround;
  spice::NodeId on_side = spice::kGround;   // channel node toward the supply
  spice::NodeId off_side = spice::kGround;  // virtual-rail (gated) side
  bool pmos = true;  // header pFET: off when the gate is driven high
};

struct PowerDomain {
  int id = -1;
  std::string name;  // rail node name, overridden by a .domain card
  DomainKind kind = DomainKind::kAlwaysOn;
  spice::NodeId rail = spice::kGround;   // seed node
  std::vector<spice::NodeId> nodes;      // sorted members, including rail
  std::vector<PowerSwitch> switches;     // gated only: PS devices feeding rail
  int parent = -1;  // id of the supplying domain (gated only, -1 unknown)
  bool declared = false;  // a .domain card names this rail
};

// One `.domain <node> <name> [gated|always-on]` card.
struct DomainAnnotation {
  std::string node;
  std::string name;
  bool gated = true;
  int line = -1;
};

struct DomainMap {
  std::vector<PowerDomain> domains;
  // NodeId -> domain id, -1 for unassigned nodes (driven signal nets,
  // steering-isolated islands, ground).
  std::vector<int> node_domain;
  // NodeId -> name of the independent source driving it ("" when undriven).
  std::vector<std::string> driven_by;

  int domain_of(spice::NodeId n) const {
    return n < node_domain.size() ? node_domain[n] : -1;
  }
  bool any_gated() const;
  const PowerDomain* find(const std::string& name) const;

  // Deterministic human-readable rendering (tests, `nvlint` debugging).
  std::string describe(const spice::Circuit& circuit) const;
};

// Extracts the power domains of a circuit.  `netlist` (optional) supplies
// `.role` overrides for source classification and `.domain` annotations for
// naming; pass nullptr for programmatic circuits (testbenches).
DomainMap extract_domains(const spice::Circuit& circuit,
                          const spice::ParsedNetlist* netlist = nullptr);

}  // namespace nvsram::lint::power
