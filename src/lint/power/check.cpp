#include "lint/power/check.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>
#include <utility>

#include "lint/rules.h"
#include "spice/circuit.h"
#include "spice/elements.h"
#include "spice/fet_element.h"
#include "spice/netlist_parser.h"
#include "util/units.h"

namespace nvsram::lint::power {

namespace {

using spice::Circuit;
using spice::Device;
using spice::FinFETElement;
using spice::NodeId;
using spice::ParsedNetlist;
using spice::VSource;
using temporal::Timeline;
using temporal::Window;

constexpr double kEdgeEps = 1e-12;  // 1 ps: settle margin around edges

std::string ns(double t) { return util::si_format(t, "s"); }

// Conduction state of one channel/branch edge at a concrete sample time.
enum class Conduct { kOff, kOn, kMaybe };

class PowerChecker {
 public:
  PowerChecker(const Circuit& circuit, const Timeline& timeline,
               const ParsedNetlist* netlist, const PowerCheckOptions& options)
      : ckt_(circuit), tl_(timeline), nl_(netlist), opt_(options) {}

  std::vector<Diagnostic> run() {
    map_ = extract_domains(ckt_, nl_);
    index_sources();
    check_domain_annotations();
    if (map_.any_gated()) {
      state_ = compute_power_state(map_, tl_, opt_.state);
      check_wordline_in_off_window();
      check_sneak_paths();
      check_missing_isolation();
      check_shared_rail_conflicts();
    }
    return std::move(out_);
  }

 private:
  // ---- shared helpers -------------------------------------------------------

  void emit(const char* rule, std::string message, std::string device,
            std::string node, int line, std::string phase) {
    Diagnostic d;
    d.rule = rule;
    d.severity = default_severity(rule);
    d.message = std::move(message);
    d.device = std::move(device);
    d.node = std::move(node);
    d.line = line;
    d.phase = std::move(phase);
    out_.push_back(std::move(d));
  }

  // Phase covering `t`; netlist-only timelines carry no phase spans, so the
  // synthetic "power-off" phase keeps the attribution meaningful.
  std::string phase_at(double t) const {
    std::string p = tl_.phase_at(t);
    return p.empty() ? std::string("power-off") : p;
  }

  int line_of_device(const std::string& name) const {
    return nl_ != nullptr ? nl_->device_line(name) : -1;
  }

  void index_sources() {
    source_of_.assign(ckt_.node_count(), nullptr);
    for (const auto& dev : ckt_.devices()) {
      const auto* src = dynamic_cast<const VSource*>(dev.get());
      if (src == nullptr) continue;
      const auto terms = src->terminals();
      if (!terms.empty() && terms.front().node != spice::kGround) {
        source_of_[terms.front().node] = src;
      }
    }
  }

  bool held(NodeId n) const {
    return n == spice::kGround || source_of_[n] != nullptr;
  }

  // Scheduled level of a held node.  The timeline is authoritative: a
  // testbench freezes its PWL specs into the sources only at run() time, so
  // the Track-exported signal is the schedule while VSource::value(t) may
  // still read a stale DC spec.  Sources absent from the timeline fall back
  // to their own waveform.
  double held_level(NodeId n, double t) const {
    if (n == spice::kGround) return 0.0;
    for (const auto& sig : tl_.signals) {
      if (sig.name == source_of_[n]->name()) return sig.level_at(t);
    }
    return source_of_[n]->value(t);
  }

  // Gated domain (off at t) a node belongs to; -1 when none.
  int off_domain_at(NodeId n, double t) const {
    const int d = map_.domain_of(n);
    if (d < 0 || map_.domains[static_cast<std::size_t>(d)].kind !=
                     DomainKind::kGated) {
      return -1;
    }
    return state_.of(d).off_at(t) ? d : -1;
  }

  // ---- power-domain-floating (+ card resolution) ----------------------------
  // `.domain` cards pin the designer's intent; extraction must agree.  A
  // declared-gated rail with no supply path, or one wired straight into an
  // always-on domain with no PS device in between, defeats the architecture.
  void check_domain_annotations() {
    if (nl_ == nullptr) return;
    for (const DomainAnnotation& ann : nl_->domain_annotations()) {
      if (!ckt_.has_node(ann.node)) {
        emit(rules::kCardUnresolved,
             ".domain names unknown node '" + ann.node + "'", "", ann.node,
             ann.line, "");
        continue;
      }
      const NodeId rail = ckt_.find_node(ann.node);
      const int d = map_.domain_of(rail);
      if (ann.gated) {
        if (d < 0) {
          // Same node already reported by float-node / no-dc-path /
          // disconnected-block => one diagnostic is enough.
          if (opt_.already_reported_floating.count(ann.node)) continue;
          emit(rules::kPowerDomainFloating,
               "declared gated domain '" + ann.name + "' rail '" + ann.node +
                   "' is not reachable from any supply source",
               "", ann.node, ann.line, "");
        } else if (map_.domains[static_cast<std::size_t>(d)].kind ==
                   DomainKind::kAlwaysOn) {
          emit(rules::kPowerDomainFloating,
               "declared gated domain '" + ann.name + "' rail '" + ann.node +
                   "' has no power switch on its supply path (it is wired "
                   "into always-on domain '" +
                   map_.domains[static_cast<std::size_t>(d)].name + "')",
               "", ann.node, ann.line, "");
        }
      } else if (d >= 0 && map_.domains[static_cast<std::size_t>(d)].kind ==
                               DomainKind::kGated) {
        emit(rules::kPowerDomainFloating,
             "domain '" + ann.name + "' rail '" + ann.node +
                 "' is declared always-on but sits behind power switch '" +
                 map_.domains[static_cast<std::size_t>(d)]
                     .switches.front()
                     .fet->name() +
                 "'",
             "", ann.node, ann.line, "");
      }
    }
  }

  // ---- power-wl-in-off-window ----------------------------------------------
  // A word line opening access transistors into a collapsed domain reads or
  // writes garbage and burns crowbar current through half-down inverters.
  void check_wordline_in_off_window() {
    for (const temporal::SignalTimeline* wl :
         tl_.with_role(temporal::SignalRole::kWordline)) {
      // The node this word line drives, matched through the source name.
      NodeId wl_node = spice::kGround;
      for (NodeId n = 1; n < ckt_.node_count(); ++n) {
        if (n < map_.driven_by.size() && map_.driven_by[n] == wl->name) {
          wl_node = n;
          break;
        }
      }
      if (wl_node == spice::kGround) continue;
      const std::vector<Window> high =
          wl->windows_above(state_.threshold, tl_.t_stop);
      if (high.empty()) continue;

      std::set<int> reported;
      for (const auto& dev : ckt_.devices()) {
        const auto* fet = dynamic_cast<const FinFETElement*>(dev.get());
        if (fet == nullptr || fet->gate() != wl_node) continue;
        for (NodeId ch : {fet->drain(), fet->source()}) {
          const int d = map_.domain_of(ch);
          if (d < 0 || map_.domains[static_cast<std::size_t>(d)].kind !=
                           DomainKind::kGated) {
            continue;
          }
          if (!reported.insert(d).second) continue;
          const std::vector<Window> bad =
              windows_intersect(high, state_.of(d).off);
          if (bad.empty()) continue;
          const Window& w = bad.front();
          emit(rules::kPowerWlInOffWindow,
               "word line '" + wl->name + "' asserts during " + ns(w.t0) +
                   ".." + ns(w.t1) + " while power domain '" +
                   map_.domains[static_cast<std::size_t>(d)].name +
                   "' is gated off; access device '" + fet->name() +
                   "' opens into a collapsed rail",
               fet->name(), ckt_.node_name(wl_node),
               wl->line >= 0 ? wl->line : line_of_device(wl->name),
               phase_at(0.5 * (w.t0 + w.t1)));
        }
      }
    }
  }

  // ---- power-sneak-path -----------------------------------------------------
  // The whole point of gating is to cut DC paths through the cell.  At
  // concrete sample times inside each off window we walk the conduction
  // graph between externally held nets (sources, ground); any surviving path
  // whose interior crosses the collapsed domain is leakage the PS switch was
  // supposed to eliminate (e.g. a bypass resistor around the header).
  void check_sneak_paths() {
    const double min_delta = opt_.sneak_delta_fraction * state_.vdd;
    std::set<std::string> reported;
    for (const PowerDomain& d : map_.domains) {
      if (d.kind != DomainKind::kGated) continue;
      for (double t : sample_times(state_.of(d.id).off)) {
        walk_conduction_graph(t, min_delta, reported);
      }
    }
  }

  std::vector<double> sample_times(const std::vector<Window>& off) const {
    std::vector<double> ts;
    for (const Window& w : off) {
      ts.push_back(w.t0 + kEdgeEps);
      ts.push_back(0.5 * (w.t0 + w.t1));
      ts.push_back(w.t1 - kEdgeEps);
      // Signal corners inside the window: levels change there, so a path
      // blocked at the midpoint may conduct just after an edge.
      for (const auto& sig : tl_.signals) {
        for (const temporal::Transition& tr : sig.transitions) {
          if (tr.t1 + kEdgeEps > w.t0 && tr.t1 + kEdgeEps < w.t1) {
            ts.push_back(tr.t1 + kEdgeEps);
          }
        }
      }
    }
    std::sort(ts.begin(), ts.end());
    ts.erase(std::unique(ts.begin(), ts.end()), ts.end());
    if (ts.size() > 64) ts.resize(64);  // plenty for any schedule here
    return ts;
  }

  Conduct fet_conducts(const FinFETElement& fet, double t) const {
    const NodeId g = fet.gate();
    if (source_of_[g] == nullptr) return Conduct::kMaybe;  // level unknown
    const double level = held_level(g, t);
    const bool pmos =
        fet.model().params().type == models::FetType::kPmos;
    const bool on = pmos ? level < state_.threshold : level >= state_.threshold;
    return on ? Conduct::kOn : Conduct::kOff;
  }

  void walk_conduction_graph(double t, double min_delta,
                             std::set<std::string>& reported) {
    struct Edge {
      NodeId to;
      const Device* via;
      bool maybe;
    };
    const std::size_t n = ckt_.node_count();
    std::vector<std::vector<Edge>> adj(n);
    for (const auto& dev : ckt_.devices()) {
      if (dynamic_cast<const VSource*>(dev.get()) != nullptr) continue;
      if (dev->voltage_branch()) continue;  // statically unknown pinned level
      bool maybe = false;
      if (const auto* fet = dynamic_cast<const FinFETElement*>(dev.get())) {
        const Conduct c = fet_conducts(*fet, t);
        if (c == Conduct::kOff) continue;
        maybe = c == Conduct::kMaybe;
      }
      for (const auto& [a, b] : dev->dc_paths()) {
        adj[a].push_back({b, dev.get(), maybe});
        adj[b].push_back({a, dev.get(), maybe});
      }
    }

    for (NodeId start = 0; start < n; ++start) {
      if (!held(start)) continue;
      // Parent-edge BFS from one held net through undriven interior nodes.
      std::vector<NodeId> parent(n, static_cast<NodeId>(-1));
      std::vector<const Device*> via(n, nullptr);
      std::vector<bool> seen(n, false);
      seen[start] = true;
      std::vector<NodeId> queue(1, start);
      for (std::size_t qi = 0; qi < queue.size(); ++qi) {
        const NodeId at = queue[qi];
        for (const Edge& e : adj[at]) {
          if (seen[e.to]) continue;
          if (held(e.to)) {
            report_sneak_path(start, at, e.to, e.via, t, min_delta, parent,
                              via, reported);
            continue;
          }
          seen[e.to] = true;
          parent[e.to] = at;
          via[e.to] = e.via;
          queue.push_back(e.to);
        }
      }
    }
  }

  void report_sneak_path(NodeId start, NodeId last_interior, NodeId end,
                         const Device* final_dev, double t, double min_delta,
                         const std::vector<NodeId>& parent,
                         const std::vector<const Device*>& via,
                         std::set<std::string>& reported) {
    // Report each conducting pair once, from its high-potential side.
    const double v0 = held_level(start, t);
    const double v1 = held_level(end, t);
    if (v0 - v1 < min_delta) return;

    // Path interior start -> end; must cross a gated-off domain.
    std::vector<NodeId> interior;
    for (NodeId at = last_interior; at != start; at = parent[at]) {
      interior.push_back(at);
    }
    std::reverse(interior.begin(), interior.end());
    int off_dom = -1;
    for (NodeId node : interior) {
      off_dom = off_domain_at(node, t);
      if (off_dom >= 0) break;
    }
    if (off_dom < 0) return;
    const PowerDomain& dom = map_.domains[static_cast<std::size_t>(off_dom)];

    const std::string key = dom.name + "|" + ckt_.node_name(start) + "|" +
                            ckt_.node_name(end);
    if (!reported.insert(key).second) return;

    bool maybe = false;
    std::ostringstream path;
    path << ckt_.node_name(start);
    const Device* first_dev = interior.empty() ? final_dev : via[interior[0]];
    for (NodeId node : interior) {
      const auto* fet = dynamic_cast<const FinFETElement*>(via[node]);
      if (fet != nullptr && fet_conducts(*fet, t) == Conduct::kMaybe) {
        maybe = true;
      }
      path << " -> " << ckt_.node_name(node);
    }
    if (const auto* fet = dynamic_cast<const FinFETElement*>(final_dev)) {
      if (fet_conducts(*fet, t) == Conduct::kMaybe) maybe = true;
    }
    path << " -> " << ckt_.node_name(end);

    std::ostringstream msg;
    msg << "sneak path " << path.str() << (maybe ? " may conduct" : " conducts")
        << " at " << ns(t) << " while power domain '" << dom.name
        << "' is gated off (" << util::si_format(v0 - v1, "V")
        << " across it); the power switch does not cut this leakage";
    emit(rules::kPowerSneakPath, msg.str(),
         first_dev != nullptr ? first_dev->name() : "",
         ckt_.node_name(dom.rail),
         first_dev != nullptr ? line_of_device(first_dev->name()) : -1,
         phase_at(t));
  }

  // ---- power-missing-isolation ---------------------------------------------
  // When a domain powers down, its internal nodes float toward mid-rail; any
  // gate they drive in a still-powered domain then conducts crowbar current.
  // Real designs clamp such crossings with isolation cells — here that means
  // the receiver must be gated at least as hard as the driver.
  void check_missing_isolation() {
    for (const auto& dev : ckt_.devices()) {
      const auto* fet = dynamic_cast<const FinFETElement*>(dev.get());
      if (fet == nullptr) continue;
      const NodeId g = fet->gate();
      const int dg = map_.domain_of(g);
      if (dg < 0 || map_.domains[static_cast<std::size_t>(dg)].kind !=
                        DomainKind::kGated) {
        continue;
      }
      const DomainSchedule& driver = state_.of(dg);
      if (driver.off.empty()) continue;  // gating never proven => stay quiet

      for (NodeId ch : {fet->drain(), fet->source()}) {
        if (ch == spice::kGround) continue;
        const int dc = map_.domain_of(ch);
        if (dc == dg) continue;  // same island powers down together
        std::vector<Window> exposed;
        if (dc >= 0 && map_.domains[static_cast<std::size_t>(dc)].kind ==
                           DomainKind::kGated) {
          // Receiver is gated too: exposed only while the driver is off but
          // the receiver still up.
          exposed = windows_subtract(driver.off, state_.of(dc).off);
        } else if (dc >= 0 || source_of_[ch] != nullptr) {
          exposed = driver.off;  // always-on domain or driven net: always up
        }
        if (exposed.empty()) continue;
        const Window& w = exposed.front();
        emit(rules::kPowerMissingIsolation,
             "gate of '" + fet->name() + "' is driven from node '" +
                 ckt_.node_name(g) + "' in power domain '" +
                 map_.domains[static_cast<std::size_t>(dg)].name +
                 "', which floats when the domain gates off at " + ns(w.t0) +
                 " while the channel at '" + ckt_.node_name(ch) +
                 "' stays powered; add an isolation clamp",
             fet->name(), ckt_.node_name(g), line_of_device(fet->name()),
             phase_at(w.t0));
        break;  // one diagnostic per receiver device
      }
    }
  }

  // ---- power-shared-rail-conflict ------------------------------------------
  // Two PS devices feeding one virtual rail must gate together; differing
  // schedules mean the rail is up whenever EITHER switch conducts, so the
  // stricter gate buys no retention-mode leakage saving.
  void check_shared_rail_conflicts() {
    for (const PowerDomain& d : map_.domains) {
      if (d.kind != DomainKind::kGated || d.switches.size() < 2) continue;
      const DomainSchedule& sched = state_.of(d.id);
      for (std::size_t i = 1; i < d.switches.size(); ++i) {
        if (d.switches[i].gate_signal == d.switches[0].gate_signal) continue;
        if (same_windows(sched.switch_off[0], sched.switch_off[i])) continue;
        const PowerSwitch& a = d.switches[0];
        const PowerSwitch& b = d.switches[i];
        emit(rules::kPowerSharedRailConflict,
             "power switches '" + a.fet->name() + "' (gate '" +
                 a.gate_signal + "') and '" + b.fet->name() + "' (gate '" +
                 b.gate_signal + "') feed the same virtual rail '" +
                 ckt_.node_name(d.rail) +
                 "' with different gating schedules; the rail stays up "
                 "whenever either switch conducts",
             b.fet->name(), ckt_.node_name(d.rail),
             line_of_device(b.fet->name()),
             sched.switch_off[i].empty() ? ""
                                         : phase_at(sched.switch_off[i]
                                                        .front()
                                                        .t0));
      }
    }
  }

  static bool same_windows(const std::vector<Window>& a,
                           const std::vector<Window>& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (std::abs(a[i].t0 - b[i].t0) > kEdgeEps ||
          std::abs(a[i].t1 - b[i].t1) > kEdgeEps) {
        return false;
      }
    }
    return true;
  }

  const Circuit& ckt_;
  const Timeline& tl_;
  const ParsedNetlist* nl_;
  const PowerCheckOptions& opt_;

  DomainMap map_;
  PowerState state_;
  std::vector<const VSource*> source_of_;  // NodeId -> driving source
  std::vector<Diagnostic> out_;
};

}  // namespace

std::vector<Diagnostic> check_power(const Circuit& circuit,
                                    const Timeline& timeline,
                                    const ParsedNetlist* netlist,
                                    const PowerCheckOptions& options) {
  return PowerChecker(circuit, timeline, netlist, options).run();
}

}  // namespace nvsram::lint::power
