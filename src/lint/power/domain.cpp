#include "lint/power/domain.h"

#include <algorithm>
#include <cctype>
#include <deque>
#include <sstream>

#include "lint/temporal/role.h"
#include "spice/circuit.h"
#include "spice/elements.h"
#include "spice/fet_element.h"
#include "spice/netlist_parser.h"

namespace nvsram::lint::power {

namespace {

using spice::Circuit;
using spice::Device;
using spice::FinFETElement;
using spice::NodeId;
using spice::ParsedNetlist;
using spice::VSource;
using temporal::SignalRole;

// Protocol role of an independent source: `.role` annotation first, name
// heuristics second (same priority order the temporal pass uses).
SignalRole source_role(const VSource& src, const std::string& driven_node,
                       const ParsedNetlist* netlist) {
  if (netlist != nullptr) {
    if (const std::string* annotated = netlist->role_annotation(src.name())) {
      return temporal::role_from_string(*annotated).value_or(SignalRole::kOther);
    }
  }
  return temporal::classify_role(src.name(), driven_node);
}

struct Edge {
  NodeId to;
  const Device* via;
};

}  // namespace

const char* to_string(DomainKind kind) {
  return kind == DomainKind::kAlwaysOn ? "always-on" : "gated";
}

bool DomainMap::any_gated() const {
  return std::any_of(domains.begin(), domains.end(), [](const PowerDomain& d) {
    return d.kind == DomainKind::kGated;
  });
}

const PowerDomain* DomainMap::find(const std::string& name) const {
  for (const PowerDomain& d : domains) {
    if (d.name == name) return &d;
  }
  return nullptr;
}

std::string DomainMap::describe(const Circuit& circuit) const {
  std::ostringstream os;
  for (const PowerDomain& d : domains) {
    os << "domain " << d.id << " '" << d.name << "' " << to_string(d.kind)
       << " rail=" << circuit.node_name(d.rail);
    if (d.parent >= 0) os << " parent=" << d.parent;
    std::vector<std::string> names;
    names.reserve(d.nodes.size());
    for (NodeId n : d.nodes) names.push_back(circuit.node_name(n));
    std::sort(names.begin(), names.end());
    os << " nodes={";
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (i) os << ", ";
      os << names[i];
    }
    os << "}";
    if (!d.switches.empty()) {
      os << " switches={";
      for (std::size_t i = 0; i < d.switches.size(); ++i) {
        if (i) os << ", ";
        const PowerSwitch& sw = d.switches[i];
        os << sw.fet->name() << " gate=";
        os << (sw.gate_signal.empty() ? "?" : sw.gate_signal) << "("
           << circuit.node_name(sw.gate_node) << ")"
           << (sw.pmos ? " pmos" : " nmos");
      }
      os << "}";
    }
    os << "\n";
  }
  return os.str();
}

DomainMap extract_domains(const Circuit& circuit,
                          const ParsedNetlist* netlist) {
  DomainMap map;
  const std::size_t n = circuit.node_count();
  map.node_domain.assign(n, -1);
  map.driven_by.assign(n, "");

  // ---- classify independent sources ---------------------------------------
  std::vector<SignalRole> node_role(n, SignalRole::kOther);
  std::vector<NodeId> supply_seeds;
  for (const auto& dev : circuit.devices()) {
    const auto* src = dynamic_cast<const VSource*>(dev.get());
    if (src == nullptr) continue;
    const auto terms = src->terminals();
    if (terms.empty()) continue;
    const NodeId plus = terms.front().node;
    if (plus == spice::kGround) continue;
    map.driven_by[plus] = src->name();
    const SignalRole role =
        source_role(*src, circuit.node_name(plus), netlist);
    node_role[plus] = role;
    if (role == SignalRole::kPower) supply_seeds.push_back(plus);
  }

  // ---- find power switches -------------------------------------------------
  // A PS device is a FET whose gate node is driven by a power-gate signal.
  // Sides are attributed later, once one side lands in a domain.
  struct RawSwitch {
    const FinFETElement* fet;
    bool attributed = false;
  };
  std::vector<RawSwitch> raw_switches;
  for (const auto& dev : circuit.devices()) {
    const auto* fet = dynamic_cast<const FinFETElement*>(dev.get());
    if (fet == nullptr) continue;
    if (node_role[fet->gate()] == SignalRole::kPowerGate) {
      raw_switches.push_back({fet});
    }
  }
  auto is_switch = [&](const Device* dev) {
    return std::any_of(raw_switches.begin(), raw_switches.end(),
                       [&](const RawSwitch& s) { return s.fet == dev; });
  };

  // ---- rail-wiring adjacency ----------------------------------------------
  // Edges a domain may grow across: always-conducting two-terminal devices
  // plus FETs with undriven gates.  FETs whose gate is a driven signal node
  // are steering switches (access, store-enable) and bound the domain;
  // sources are held nodes, never wiring.
  std::vector<std::vector<Edge>> adj(n);
  for (const auto& dev : circuit.devices()) {
    if (dynamic_cast<const VSource*>(dev.get()) != nullptr) continue;
    if (dynamic_cast<const spice::ISource*>(dev.get()) != nullptr) continue;
    if (dev->voltage_branch()) continue;  // VCVS outputs pin, they don't wire
    if (const auto* fet = dynamic_cast<const FinFETElement*>(dev.get())) {
      if (is_switch(dev.get())) continue;        // domain boundary by role
      if (!map.driven_by[fet->gate()].empty()) continue;  // steering switch
    }
    for (const auto& [a, b] : dev->dc_paths()) {
      adj[a].push_back({b, dev.get()});
      adj[b].push_back({a, dev.get()});
    }
  }

  // ---- seed always-on domains ---------------------------------------------
  auto new_domain = [&](NodeId rail, DomainKind kind) -> PowerDomain& {
    PowerDomain d;
    d.id = static_cast<int>(map.domains.size());
    d.kind = kind;
    d.rail = rail;
    d.name = circuit.node_name(rail);
    map.domains.push_back(std::move(d));
    map.node_domain[rail] = map.domains.back().id;
    return map.domains.back();
  };
  for (NodeId seed : supply_seeds) {
    if (map.node_domain[seed] < 0) new_domain(seed, DomainKind::kAlwaysOn);
  }

  // ---- grow a domain over the rail-wiring graph ---------------------------
  // BFS over the domain's current members; assigned nodes of other domains
  // act as barriers (a gated rail seeded at a switch's off side stops the
  // supplying domain from swallowing the cell through a bypass edge).
  // Returns true when any new node was claimed.
  auto expand = [&](const PowerDomain& d) {
    std::deque<NodeId> queue;
    for (NodeId node = 1; node < n; ++node) {
      if (map.node_domain[node] == d.id) queue.push_back(node);
    }
    bool grew = false;
    while (!queue.empty()) {
      const NodeId at = queue.front();
      queue.pop_front();
      for (const Edge& e : adj[at]) {
        if (e.to == spice::kGround) continue;
        if (map.node_domain[e.to] >= 0) continue;
        if (!map.driven_by[e.to].empty()) continue;  // driver-owned net
        map.node_domain[e.to] = d.id;
        grew = true;
        queue.push_back(e.to);
      }
    }
    return grew;
  };

  // ---- attribute switches, seed gated rails, iterate to fixpoint ----------
  // A switch is attributable once one channel side is in a domain (or on
  // ground, for footer devices): that side supplies, the other is the
  // virtual rail.  Seeding happens BEFORE any expansion so the virtual rail
  // is a barrier; nested rails (PS behind PS) resolve over further rounds as
  // outer domains expand.
  auto attribute_pass = [&]() {
    bool any = false;
    for (RawSwitch& raw : raw_switches) {
      if (raw.attributed) continue;
      const NodeId a = raw.fet->drain();
      const NodeId b = raw.fet->source();
      const int da = a == spice::kGround ? -1 : map.node_domain[a];
      const int db = b == spice::kGround ? -1 : map.node_domain[b];
      NodeId on_side = spice::kGround, off_side = spice::kGround;
      if (a == spice::kGround || b == spice::kGround) {
        // Footer switch: ground is the supplying side, the other channel
        // node is the virtual-ground rail.
        on_side = a == spice::kGround ? a : b;
        off_side = a == spice::kGround ? b : a;
        if (off_side == spice::kGround) continue;  // strapped to ground
      } else if (da >= 0 && db >= 0) {
        // Both sides assigned.  The supplying side is the always-on one (or
        // the lower id for gated-to-gated wiring).
        const bool a_on = map.domains[static_cast<std::size_t>(da)].kind ==
                          DomainKind::kAlwaysOn;
        const bool b_on = map.domains[static_cast<std::size_t>(db)].kind ==
                          DomainKind::kAlwaysOn;
        if (a_on && b_on) {
          raw.attributed = true;  // rail-to-rail strap, not a gating switch
          continue;
        }
        on_side = (a_on || (!b_on && da <= db)) ? a : b;
        off_side = on_side == a ? b : a;
      } else if (da >= 0 || db >= 0) {
        on_side = da >= 0 ? a : b;
        off_side = da >= 0 ? b : a;
      } else {
        continue;  // neither side reached yet; try again next round
      }
      raw.attributed = true;
      any = true;
      int gated_id = map.node_domain[off_side];
      if (gated_id < 0) {
        gated_id = new_domain(off_side, DomainKind::kGated).id;
      } else if (map.domains[static_cast<std::size_t>(gated_id)].kind !=
                 DomainKind::kGated) {
        continue;  // off side already proven always-on (sneak rule territory)
      }
      PowerDomain& gd = map.domains[static_cast<std::size_t>(gated_id)];
      PowerSwitch sw;
      sw.fet = raw.fet;
      sw.gate_node = raw.fet->gate();
      sw.gate_signal = map.driven_by[sw.gate_node];
      sw.on_side = on_side;
      sw.off_side = off_side;
      sw.pmos = raw.fet->model().params().type == models::FetType::kPmos;
      gd.switches.push_back(sw);
      if (gd.parent < 0 && on_side != spice::kGround) {
        gd.parent = map.node_domain[on_side];
      }
    }
    return any;
  };

  for (;;) {
    const bool attributed = attribute_pass();
    bool grew = false;
    for (std::size_t i = 0; i < map.domains.size(); ++i) {
      grew = expand(map.domains[i]) || grew;
    }
    if (!attributed && !grew) break;
  }

  // ---- collect members -----------------------------------------------------
  for (NodeId node = 1; node < n; ++node) {
    const int d = map.node_domain[node];
    if (d >= 0) map.domains[d].nodes.push_back(node);
  }
  for (auto& d : map.domains) std::sort(d.nodes.begin(), d.nodes.end());

  // ---- .domain annotations override names ---------------------------------
  if (netlist != nullptr) {
    for (const DomainAnnotation& ann : netlist->domain_annotations()) {
      if (!circuit.has_node(ann.node)) continue;  // card-unresolved (check.cpp)
      const int d = map.node_domain[circuit.find_node(ann.node)];
      if (d >= 0) {
        map.domains[d].name = ann.name;
        map.domains[d].declared = true;
      }
    }
  }
  return map;
}

}  // namespace nvsram::lint::power
