// Per-domain power state over time, by abstract interpretation.
//
// Composes the extracted DomainMap with the stimulus Timeline: each gated
// domain's PS gate signals are interpreted against an on/off threshold,
// giving the maximal windows in which the domain's rail is collapsed (every
// feeding switch cut) plus the ramp windows in between.  Nested domains
// inherit their parent's off windows (a child rail cannot be up while its
// supplier is down).  No transient is ever solved — this is the abstract
// power state the power-* rules check events against.
#pragma once

#include <vector>

#include "lint/power/domain.h"
#include "lint/temporal/timeline.h"

namespace nvsram::lint::power {

struct StateOptions {
  // Nominal rail; 0 = derive from the power-role signals in the timeline
  // (their maximum level), falling back to 0.9 V.
  double vdd = 0.0;
  // A gate signal beyond on_fraction * vdd counts as asserted.
  double on_fraction = 0.5;
};

struct DomainSchedule {
  int domain = -1;
  // Maximal windows with the rail collapsed, time-sorted and disjoint.
  // Half-open [t0, t1): by t1 the recovery has completed.  off_at() and the
  // windows_* algebra below share this convention, so adjacent windows
  // [a,b) [b,c) never double-count b and an empty gap never survives.
  std::vector<temporal::Window> off;
  // Gate-signal ramps crossing the threshold (rail collapse / recovery).
  std::vector<temporal::Window> transitions;
  // Off windows of each feeding switch alone, parallel to
  // PowerDomain::switches (power-shared-rail-conflict compares these).
  std::vector<std::vector<temporal::Window>> switch_off;

  bool always_on() const { return off.empty(); }
  bool off_at(double t) const;
};

struct PowerState {
  std::vector<DomainSchedule> schedules;  // indexed by domain id
  double vdd = 0.9;                       // resolved nominal rail
  double threshold = 0.45;                // resolved on/off gate threshold

  const DomainSchedule& of(int domain_id) const {
    return schedules[static_cast<std::size_t>(domain_id)];
  }
};

PowerState compute_power_state(const DomainMap& map,
                               const temporal::Timeline& timeline,
                               const StateOptions& options = {});

// Interval algebra over sorted disjoint window lists (exposed for tests).
std::vector<temporal::Window> windows_intersect(
    const std::vector<temporal::Window>& a,
    const std::vector<temporal::Window>& b);
std::vector<temporal::Window> windows_union(
    const std::vector<temporal::Window>& a,
    const std::vector<temporal::Window>& b);
std::vector<temporal::Window> windows_subtract(
    const std::vector<temporal::Window>& a,
    const std::vector<temporal::Window>& b);

}  // namespace nvsram::lint::power
