// The power-* rule family: power-intent checks over domains + power state.
//
//   power-wl-in-off-window    word line asserts while the domain holding the
//                             accessed storage nodes is gated off
//   power-sneak-path          a DC path conducts through an off domain
//                             between externally held nets (the leakage the
//                             gating was supposed to cut)
//   power-missing-isolation   an off-domain node drives the gate of a
//                             powered receiver with no isolation in between
//   power-domain-floating     a .domain-declared gated rail has no power
//                             switch on its supply path
//   power-shared-rail-conflict  one virtual rail fed by switches with
//                             different gating schedules
//
// All checks are static: the domain map comes from topology, the power state
// from abstract interpretation of the PS gate signals.  Diagnostics carry
// netlist lines (when a netlist is given) and the covering testbench phase —
// or the synthetic "power-off" phase for netlist-only timelines.
#pragma once

#include <string>
#include <unordered_set>
#include <vector>

#include "lint/diagnostic.h"
#include "lint/power/state.h"
#include "lint/temporal/timeline.h"

namespace nvsram::spice {
class Circuit;
class ParsedNetlist;
}  // namespace nvsram::spice

namespace nvsram::lint::power {

struct PowerCheckOptions {
  StateOptions state;
  // Fraction of VDD two held nets must differ by before a conduction path
  // between them counts as a sneak path.
  double sneak_delta_fraction = 0.1;
  // Node names already reported by float-node / no-dc-path /
  // disconnected-block; power-domain-floating dedupes against these the way
  // the structural rules dedupe degree-0 nodes.
  std::unordered_set<std::string> already_reported_floating;
};

// Runs every power-* check.  `netlist` (nullable) supplies .domain
// annotations and line attribution; the timeline supplies the schedule
// (netlist sources or exported testbench tracks).
std::vector<Diagnostic> check_power(const spice::Circuit& circuit,
                                    const temporal::Timeline& timeline,
                                    const spice::ParsedNetlist* netlist,
                                    const PowerCheckOptions& options = {});

}  // namespace nvsram::lint::power
