// LintReport: the ordered diagnostic list a lint pass produces, plus the
// exception type run_* throws when error-severity diagnostics are present.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "lint/diagnostic.h"

namespace nvsram::lint {

class LintReport {
 public:
  void add(Diagnostic d) { diags_.push_back(std::move(d)); }

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }
  bool empty() const { return diags_.empty(); }
  std::size_t size() const { return diags_.size(); }

  std::size_t count(Severity s) const;
  bool has_errors() const { return count(Severity::kError) > 0; }

  // Diagnostics carrying a given rule id (for targeted tests).
  std::vector<Diagnostic> by_rule(const std::string& rule_id) const;

  // One line per diagnostic plus a trailing "N error(s), M warning(s)"
  // summary; "" for an empty report.
  std::string format() const;

 private:
  std::vector<Diagnostic> diags_;
};

// Thrown by ParsedNetlist::run_* when linting finds error-severity
// diagnostics; carries the full report for programmatic inspection.
class LintError : public std::runtime_error {
 public:
  explicit LintError(LintReport report);
  const LintReport& report() const { return report_; }

 private:
  LintReport report_;
};

}  // namespace nvsram::lint
