#include "lint/lint_cache.h"

#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "lint/hier/summary.h"

namespace nvsram::lint {

namespace {

struct Key {
  std::uint64_t content = 0;
  std::uint64_t options = 0;
  bool operator==(const Key& o) const {
    return content == o.content && options == o.options;
  }
};

struct KeyHash {
  std::size_t operator()(const Key& k) const {
    // One extra FNV-1a round folds the options word into the content hash.
    std::uint64_t h = k.content;
    for (int i = 0; i < 8; ++i) {
      h ^= (k.options >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
    return static_cast<std::size_t>(h);
  }
};

struct Cache {
  std::mutex m;
  std::unordered_map<Key, LintReport, KeyHash> map;
  std::size_t hits = 0;
  std::size_t misses = 0;
  // Per-definition summaries (hierarchical engine), keyed on the subckt
  // content hash alone — summaries are options-independent.
  std::unordered_map<std::uint64_t, std::shared_ptr<const hier::DefSummary>>
      summaries;
  std::size_t summary_hits = 0;
  std::size_t summary_misses = 0;
};

Cache& cache() {
  static Cache c;
  return c;
}

}  // namespace

std::optional<LintReport> lint_cache_lookup(std::uint64_t content_hash,
                                            std::uint64_t options_fp) {
  if (content_hash == 0) return std::nullopt;
  Cache& c = cache();
  std::lock_guard<std::mutex> lock(c.m);
  auto it = c.map.find(Key{content_hash, options_fp});
  if (it == c.map.end()) {
    ++c.misses;
    return std::nullopt;
  }
  ++c.hits;
  return it->second;
}

void lint_cache_store(std::uint64_t content_hash, std::uint64_t options_fp,
                      const LintReport& report) {
  if (content_hash == 0) return;
  Cache& c = cache();
  std::lock_guard<std::mutex> lock(c.m);
  c.map.insert_or_assign(Key{content_hash, options_fp}, report);
}

std::shared_ptr<const hier::DefSummary> lint_summary_cache_lookup(
    std::uint64_t def_content_hash) {
  Cache& c = cache();
  std::lock_guard<std::mutex> lock(c.m);
  auto it = c.summaries.find(def_content_hash);
  if (it == c.summaries.end()) {
    ++c.summary_misses;
    return nullptr;
  }
  ++c.summary_hits;
  return it->second;
}

void lint_summary_cache_store(
    std::uint64_t def_content_hash,
    std::shared_ptr<const hier::DefSummary> summary) {
  if (def_content_hash == 0 || summary == nullptr) return;
  Cache& c = cache();
  std::lock_guard<std::mutex> lock(c.m);
  c.summaries.insert_or_assign(def_content_hash, std::move(summary));
}

LintCacheStats lint_cache_stats() {
  Cache& c = cache();
  std::lock_guard<std::mutex> lock(c.m);
  LintCacheStats stats;
  stats.hits = c.hits;
  stats.misses = c.misses;
  stats.entries = c.map.size();
  stats.summary_hits = c.summary_hits;
  stats.summary_misses = c.summary_misses;
  stats.summary_entries = c.summaries.size();
  return stats;
}

void lint_cache_clear() {
  Cache& c = cache();
  std::lock_guard<std::mutex> lock(c.m);
  c.map.clear();
  c.hits = 0;
  c.misses = 0;
  c.summaries.clear();
  c.summary_hits = 0;
  c.summary_misses = 0;
}

}  // namespace nvsram::lint
