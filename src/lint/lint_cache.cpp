#include "lint/lint_cache.h"

#include <mutex>
#include <unordered_map>
#include <utility>

namespace nvsram::lint {

namespace {

struct Key {
  std::uint64_t content = 0;
  std::uint64_t options = 0;
  bool operator==(const Key& o) const {
    return content == o.content && options == o.options;
  }
};

struct KeyHash {
  std::size_t operator()(const Key& k) const {
    // One extra FNV-1a round folds the options word into the content hash.
    std::uint64_t h = k.content;
    for (int i = 0; i < 8; ++i) {
      h ^= (k.options >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
    return static_cast<std::size_t>(h);
  }
};

struct Cache {
  std::mutex m;
  std::unordered_map<Key, LintReport, KeyHash> map;
  std::size_t hits = 0;
  std::size_t misses = 0;
};

Cache& cache() {
  static Cache c;
  return c;
}

}  // namespace

std::optional<LintReport> lint_cache_lookup(std::uint64_t content_hash,
                                            std::uint64_t options_fp) {
  if (content_hash == 0) return std::nullopt;
  Cache& c = cache();
  std::lock_guard<std::mutex> lock(c.m);
  auto it = c.map.find(Key{content_hash, options_fp});
  if (it == c.map.end()) {
    ++c.misses;
    return std::nullopt;
  }
  ++c.hits;
  return it->second;
}

void lint_cache_store(std::uint64_t content_hash, std::uint64_t options_fp,
                      const LintReport& report) {
  if (content_hash == 0) return;
  Cache& c = cache();
  std::lock_guard<std::mutex> lock(c.m);
  c.map.insert_or_assign(Key{content_hash, options_fp}, report);
}

LintCacheStats lint_cache_stats() {
  Cache& c = cache();
  std::lock_guard<std::mutex> lock(c.m);
  return {c.hits, c.misses, c.map.size()};
}

void lint_cache_clear() {
  Cache& c = cache();
  std::lock_guard<std::mutex> lock(c.m);
  c.map.clear();
  c.hits = 0;
  c.misses = 0;
}

}  // namespace nvsram::lint
