#include "lint/dataflow/lattice.h"

#include <algorithm>

namespace nvsram::lint::dataflow {

const char* to_string(DataState s) {
  switch (s) {
    case DataState::kUnknown: return "UNKNOWN";
    case DataState::kVolatileDirty: return "VOLATILE_DIRTY";
    case DataState::kStoredClean: return "STORED_CLEAN";
    case DataState::kStoredStale: return "STORED_STALE";
    case DataState::kLost: return "LOST";
    case DataState::kRestored: return "RESTORED";
  }
  return "?";
}

namespace {

// Partial order rank: higher rank = less information / worse outcome.  Used
// only to pick the conservative side when two paths disagree.
int rank(DataState s) {
  switch (s) {
    case DataState::kStoredClean: return 0;
    case DataState::kRestored: return 1;
    case DataState::kUnknown: return 2;
    case DataState::kVolatileDirty: return 3;
    case DataState::kStoredStale: return 4;
    case DataState::kLost: return 5;
  }
  return 5;
}

}  // namespace

CellState join(const CellState& a, const CellState& b) {
  if (a == b) return a;
  CellState out;
  out.state = rank(a.state) >= rank(b.state) ? a.state : b.state;
  // Generations merge conservatively: the latch may hold either, so keep
  // the newer possibility; the NV contents are only known when both paths
  // agree.
  out.latch_gen = std::max(a.latch_gen, b.latch_gen);
  out.nv_gen = a.nv_gen == b.nv_gen ? a.nv_gen : -1;
  out.lost_gen = std::max(a.lost_gen, b.lost_gen);
  return out;
}

}  // namespace nvsram::lint::dataflow
