// The data-* rule family: retention-state dataflow over a schedule.
//
//   data-lost-in-off-window   a gate-off destroys latch data newer than the
//                             MTJ contents (no completed store covers the
//                             last write)
//   data-stale-restore        a restore re-latches an MTJ generation older
//                             than what the cell held at gate-off
//   data-read-before-restore  a read while the latch state is LOST (powered
//                             up again, but nothing re-latched the MTJs)
//   data-redundant-store      a store writes a generation the MTJs already
//                             hold (energy advisory, quantified from the
//                             characterization cache when available)
//   data-store-truncated      a store pulse shorter than the MTJ switching
//                             time (the NV generation does not advance)
//
// The pass is abstract interpretation over the classified event stream
// (events.h) with the per-cell lattice of lattice.h: no transient is ever
// solved, so a violation is a *proof* that the schedule loses (or wastes)
// data for every device sizing.  Applies only to timelines that carry MTJ
// retention devices — a volatile-only deck has no nonvolatile contract to
// break.
#pragma once

#include <vector>

#include "lint/diagnostic.h"
#include "lint/temporal/timeline.h"

namespace nvsram::models {
struct PaperParams;
struct MTJParams;
}  // namespace nvsram::models

namespace nvsram::spice {
class Circuit;
class ParsedNetlist;
}  // namespace nvsram::spice

namespace nvsram::lint::dataflow {

struct DataflowOptions {
  double vdd = 0.9;               // nominal rail
  // Minimum pulse that completes the CIMS switch at the configured store
  // overdrive: tau0 / (store_current_factor - 1), see models/mtj.h.
  double mtj_write_pulse = 6e-9;
  // Access-cycle budget: how far before a word-line rise a bitline
  // transition still counts as driving that access (same lookback the
  // protocol checker uses).
  double clock_period = 1.0 / 300e6;
  // Energy of one completed store at the current parameter point (J);
  // 0 = unknown.  Fills the data-redundant-store advisory.  Callers peek
  // the characterization cache for it — never compute it here, or the
  // lint gate inside characterize() would recurse.
  double store_energy_hint = 0.0;

  static DataflowOptions from_paper(const models::PaperParams& pp);

  // CIMS switching time tau0 / (factor - 1) for a concrete MTJ parameter
  // set; falls back to `fallback` when the overdrive never switches.
  static double required_store_pulse(const models::MTJParams& mtj,
                                     double store_current_factor,
                                     double fallback);
};

// Runs the dataflow pass.  `circuit` (nullable) enables power-intent off
// windows via lint/power/state; `netlist` (nullable) supplies .role/.domain
// annotations for the extraction.  Diagnostics carry the driving signal
// (device), its netlist line when known, and the covering phase — real
// testbench phases, or synthesized ones ("power-off", "store", "restore",
// "active") for netlist timelines.
std::vector<Diagnostic> check_dataflow(const temporal::Timeline& timeline,
                                       const DataflowOptions& options,
                                       const spice::Circuit* circuit = nullptr,
                                       const spice::ParsedNetlist* netlist =
                                           nullptr);

}  // namespace nvsram::lint::dataflow
