// Classified driver events for the retention dataflow pass.
//
// Reduces a Timeline (netlist sources or exported testbench tracks) plus the
// power-intent off windows to a totally ordered stream of data-relevant
// events: writes, reads, store pulses, gate-off / power-up edges, and
// restore pulses.  The classification mirrors the protocol checker's
// evidence rules (write drivers first, bitline-near-wordline second,
// wordline fallback last) so the two passes never disagree about what an
// access is; the off windows come from lint/power/state when a circuit is
// available, unioned with the timeline-level rail/gate heuristics.
#pragma once

#include <vector>

#include "lint/temporal/timeline.h"

namespace nvsram::spice {
class Circuit;
class ParsedNetlist;
}  // namespace nvsram::spice

namespace nvsram::lint::dataflow {

struct Event {
  enum class Kind {
    kWrite,    // new data latched into the cell
    kRead,     // word-line access that drives no new data
    kStore,    // powered SR pulse targeting the MTJs
    kGateOff,  // rail collapse begins (off-window start)
    kPowerUp,  // rail recovery completes (off-window end)
    kRestore,  // SR pulse straddling a rail recovery
  };
  Kind kind = Kind::kWrite;
  double t = 0.0;                 // event time (sort key)
  temporal::Window window;        // full extent for store/restore/off events
  // Store pulses cut by a gate-off edge never complete; the interpreter
  // skips the NV update without re-reporting (protocol-store-gate-overlap
  // owns the malformed pulse itself).
  bool cut_by_gate = false;
  // Attribution: the driving signal, nullptr for synthesized edges.
  const temporal::SignalTimeline* signal = nullptr;
};

// Rail-collapse windows of the schedule.  When `circuit` is given the
// domain map is extracted and each gated domain's off windows (abstract
// interpretation of its PS gate signals, lint/power/state) are unioned in;
// the timeline-level heuristics (power-gate asserts, full rail collapses)
// always contribute, so ideal-source decks without a modeled power switch
// are still covered.
std::vector<temporal::Window> collect_off_windows(
    const temporal::Timeline& timeline, const spice::Circuit* circuit,
    const spice::ParsedNetlist* netlist, double vdd);

// Classifies every data-relevant event of the timeline against the given
// off windows, returned in event order (ties broken so that writes and
// stores precede the gate-off edge they abut, and restores precede reads).
std::vector<Event> extract_events(
    const temporal::Timeline& timeline,
    const std::vector<temporal::Window>& off_windows, double clock_period);

}  // namespace nvsram::lint::dataflow
