// Per-cell data-state lattice for the retention dataflow pass.
//
// The abstract state tracks where the cell's bit lives, not what it is:
// a generation counter advances on every write, the volatile latch and the
// MTJ pair each hold one generation, and the lattice point says how the two
// relate:
//
//            UNKNOWN                (power-up contents, nothing written)
//               |  write
//               v
//         VOLATILE_DIRTY            (latch ahead of the MTJs)
//           |  store        .
//           v                . gate-off
//     STORED_CLEAN            v
//      (latch == NV)         LOST   (latch destroyed; NV may be stale)
//           |  write           |  restore
//           v                  v
//     (VOLATILE_DIRTY)    RESTORED / STORED_STALE
//                          (latch re-latched from NV; STALE when the NV
//                           generation is older than what was lost)
//
// Transfer functions over classified schedule events live in check.cpp; the
// join makes the per-cell state a proper (finite) lattice so the fixpoint
// over the power-intent off-windows is well defined.
#pragma once

namespace nvsram::lint::dataflow {

enum class DataState {
  kUnknown,        // nothing written yet: latch holds power-up contents
  kVolatileDirty,  // latch generation ahead of the MTJ generation
  kStoredClean,    // latch and MTJs hold the same generation
  kStoredStale,    // latch re-latched from MTJs older than what was lost
  kLost,           // rail collapsed with the latch generation unsaved
  kRestored,       // latch re-latched from MTJs holding the lost generation
};

const char* to_string(DataState s);

// Abstract per-cell state: lattice point plus the generation bookkeeping
// the transfer functions key on.
struct CellState {
  DataState state = DataState::kUnknown;
  // Generation the volatile latch holds; 0 = power-up contents.  Advances
  // on every write event.
  int latch_gen = 0;
  // Generation the MTJ pair holds; -1 = never stored (factory state).
  int nv_gen = -1;
  // Generation the latch held when it was last destroyed by a gate-off
  // (meaningful while state is kLost / after a restore).
  int lost_gen = -1;

  bool nv_known() const { return nv_gen >= 0; }

  bool operator==(const CellState&) const = default;
};

// Lattice join (least upper bound) for merging control paths: conflicting
// components degrade toward the conservative top (kLost with unknown NV),
// matching components pass through.  The event sequence of one schedule is
// totally ordered, so the fixpoint below converges in a single pass; the
// join keeps the analysis sound if branching schedules ever appear.
CellState join(const CellState& a, const CellState& b);

}  // namespace nvsram::lint::dataflow
