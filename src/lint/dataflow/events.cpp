#include "lint/dataflow/events.h"

#include <algorithm>
#include <cmath>

#include "lint/power/domain.h"
#include "lint/power/state.h"

namespace nvsram::lint::dataflow {

namespace {

using temporal::SignalRole;
using temporal::SignalTimeline;
using temporal::Timeline;
using temporal::Transition;
using temporal::Window;

constexpr double kEps = 1e-12;  // 1 ps: below any schedulable edge spacing

double min_level_in(const SignalTimeline& s, const Window& w) {
  double m = std::min(s.level_at(w.t0), s.level_at(w.t1));
  for (const Transition& tr : s.transitions) {
    if (tr.t0 >= w.t0 && tr.t0 <= w.t1) m = std::min(m, tr.v0);
    if (tr.t1 >= w.t0 && tr.t1 <= w.t1) m = std::min(m, tr.v1);
  }
  return m;
}

// Expands a threshold-crossing window to the full extent of the transitions
// that produced its edges (same widening the protocol checker applies, so
// both passes agree on where an off window begins).
Window widen_to_edges(const SignalTimeline& s, Window w) {
  for (const Transition& tr : s.transitions) {
    if (w.t0 >= tr.t0 - kEps && w.t0 <= tr.t1 + kEps) w.t0 = tr.t0;
    if (w.t1 >= tr.t0 - kEps && w.t1 <= tr.t1 + kEps) {
      w.t1 = std::max(w.t1, tr.t1);
    }
  }
  return w;
}

// Tie-break rank at equal event times: data movement that abuts a gate-off
// edge happened while the rail was still up; restores precede the reads
// they enable.
int order_rank(Event::Kind k) {
  switch (k) {
    case Event::Kind::kWrite: return 0;
    case Event::Kind::kStore: return 1;
    case Event::Kind::kGateOff: return 2;
    case Event::Kind::kPowerUp: return 3;
    case Event::Kind::kRestore: return 4;
    case Event::Kind::kRead: return 5;
  }
  return 6;
}

}  // namespace

std::vector<Window> collect_off_windows(const Timeline& timeline,
                                        const spice::Circuit* circuit,
                                        const spice::ParsedNetlist* netlist,
                                        double vdd) {
  std::vector<Window> off;

  // Timeline-level evidence, exactly as the protocol checker reads it: the
  // power-gate line asserted (super cutoff) or the rail itself fully
  // collapsed (ideal-source decks that gate by driving VDD to zero).
  if (const SignalTimeline* pg = timeline.find_role(SignalRole::kPowerGate)) {
    if (pg->max_level() > 0.3 * vdd) {
      const double thr = 0.5 * pg->max_level();
      for (Window w : pg->windows_above(thr, timeline.t_stop)) {
        off.push_back(widen_to_edges(*pg, w));
      }
    }
  }
  if (const SignalTimeline* pwr = timeline.find_role(SignalRole::kPower)) {
    const double nominal = std::max(pwr->max_level(), vdd);
    for (Window w : pwr->windows_below(0.95 * nominal, timeline.t_stop)) {
      if (min_level_in(*pwr, w) < 0.1 * nominal) {
        off.push_back(widen_to_edges(*pwr, w));
      }
    }
  }

  // Power-intent evidence: every gated domain's off schedule, computed by
  // abstract interpretation of its PS gate signals.  The union with the
  // heuristics above is the fixpoint input of the dataflow pass.
  std::vector<Window> domain_off;
  if (circuit != nullptr) {
    const power::DomainMap map = power::extract_domains(*circuit, netlist);
    power::StateOptions sopt;
    sopt.vdd = vdd;
    const power::PowerState state =
        power::compute_power_state(map, timeline, sopt);
    for (const power::DomainSchedule& sched : state.schedules) {
      domain_off = power::windows_union(domain_off, sched.off);
    }
  }
  return power::windows_union(off, domain_off);
}

std::vector<Event> extract_events(const Timeline& timeline,
                                  const std::vector<Window>& off_windows,
                                  double clock_period) {
  std::vector<Event> events;
  const double t_stop = timeline.t_stop;

  for (const Window& po : off_windows) {
    Event down;
    down.kind = Event::Kind::kGateOff;
    down.t = po.t0;
    down.window = po;
    events.push_back(down);
    Event up;
    up.kind = Event::Kind::kPowerUp;
    up.t = po.t1;
    up.window = po;
    events.push_back(up);
  }

  // Writes: write-driver asserts first; bitline transitions near a
  // word-line window second; bare word lines as conservative fallback only
  // when neither better evidence exists (then no read events are emitted —
  // every access might be a write).
  const auto wds = timeline.with_role(SignalRole::kWriteDriver);
  const auto bls = timeline.with_role(SignalRole::kBitline);
  const auto wls = timeline.with_role(SignalRole::kWordline);
  std::vector<std::pair<Window, const SignalTimeline*>> wl_windows;
  for (const SignalTimeline* wl : wls) {
    if (wl->max_level() < 0.05) continue;
    for (const Window& w : wl->windows_above(0.5 * wl->max_level(), t_stop)) {
      wl_windows.emplace_back(w, wl);
    }
  }

  std::vector<char> wl_is_write(wl_windows.size(), 0);
  bool have_write_evidence = false;
  if (!wds.empty()) {
    have_write_evidence = true;
    for (const SignalTimeline* wd : wds) {
      if (wd->max_level() < 0.05) continue;
      for (const Window& w :
           wd->windows_above(0.5 * wd->max_level(), t_stop)) {
        Event e;
        e.kind = Event::Kind::kWrite;
        e.t = w.t0;
        e.window = w;
        e.signal = wd;
        events.push_back(e);
        // A word-line window covering the driver assert is the same access.
        for (std::size_t i = 0; i < wl_windows.size(); ++i) {
          const Window& wl = wl_windows[i].first;
          if (w.t0 < wl.t1 + kEps && w.t1 > wl.t0 - kEps) wl_is_write[i] = 1;
        }
      }
    }
  } else if (!bls.empty()) {
    have_write_evidence = true;
    for (std::size_t i = 0; i < wl_windows.size(); ++i) {
      const Window& w = wl_windows[i].first;
      bool wrote = false;
      for (const SignalTimeline* bl : bls) {
        for (const Transition& tr : bl->transitions) {
          if (tr.t1 > w.t0 - clock_period - kEps && tr.t0 < w.t1 + kEps) {
            wrote = true;
          }
        }
      }
      if (wrote) {
        wl_is_write[i] = 1;
        Event e;
        e.kind = Event::Kind::kWrite;
        e.t = w.t0;
        e.window = w;
        e.signal = wl_windows[i].second;
        events.push_back(e);
      }
    }
  } else {
    for (const auto& [w, wl] : wl_windows) {
      Event e;
      e.kind = Event::Kind::kWrite;
      e.t = w.t0;
      e.window = w;
      e.signal = wl;
      events.push_back(e);
    }
  }

  // Reads: word-line accesses that drove no new data — only meaningful when
  // real write evidence separates the two kinds.
  if (have_write_evidence) {
    for (std::size_t i = 0; i < wl_windows.size(); ++i) {
      if (wl_is_write[i]) continue;
      Event e;
      e.kind = Event::Kind::kRead;
      e.t = wl_windows[i].first.t0;
      e.window = wl_windows[i].first;
      e.signal = wl_windows[i].second;
      events.push_back(e);
    }
  }

  // SR pulses: restore when the window straddles a rail recovery, dead when
  // fully inside an off window (the protocol pass reports those), store
  // otherwise — flagged when a gate-off edge cuts the pulse.
  for (const SignalTimeline* sr :
       timeline.with_role(SignalRole::kStoreEnable)) {
    if (sr->max_level() < 0.05) continue;
    for (const Window& w :
         sr->windows_above(0.5 * sr->max_level(), t_stop)) {
      bool recovery_inside = false;
      bool fully_off = false;
      bool cut_by_gate = false;
      for (const Window& po : off_windows) {
        if (po.t1 > w.t0 - kEps && po.t1 <= w.t1 + kEps) {
          recovery_inside = true;
        }
        if (w.t0 >= po.t0 - kEps && w.t1 <= po.t1 + kEps) fully_off = true;
        if (w.t0 < po.t0 - kEps && w.t1 > po.t0 + kEps && w.t1 <= po.t1) {
          cut_by_gate = true;
        }
      }
      if (fully_off) continue;
      Event e;
      e.t = w.t0;
      e.window = w;
      e.signal = sr;
      if (recovery_inside) {
        e.kind = Event::Kind::kRestore;
        // The restore takes effect at the recovery edge it straddles.
        for (const Window& po : off_windows) {
          if (po.t1 > w.t0 - kEps && po.t1 <= w.t1 + kEps) {
            e.t = std::max(e.t, po.t1);
          }
        }
      } else {
        e.kind = Event::Kind::kStore;
        e.cut_by_gate = cut_by_gate;
      }
      events.push_back(e);
    }
  }

  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (std::fabs(a.t - b.t) > kEps) return a.t < b.t;
    return order_rank(a.kind) < order_rank(b.kind);
  });
  return events;
}

}  // namespace nvsram::lint::dataflow
