#include "lint/dataflow/check.h"

#include <algorithm>
#include <sstream>

#include "lint/dataflow/events.h"
#include "lint/dataflow/lattice.h"
#include "lint/rules.h"
#include "models/mtj.h"
#include "models/paper_params.h"
#include "util/units.h"

namespace nvsram::lint::dataflow {

namespace {

using temporal::Timeline;
using temporal::Window;

constexpr double kEps = 1e-12;

std::string ns(double t) { return util::si_format(t, "s"); }

class DataflowChecker {
 public:
  DataflowChecker(const Timeline& tl, const DataflowOptions& opt,
                  const spice::Circuit* circuit,
                  const spice::ParsedNetlist* netlist)
      : tl_(tl), opt_(opt), circuit_(circuit), netlist_(netlist) {}

  std::vector<Diagnostic> run() {
    // Nothing scheduled, or nothing nonvolatile to lose: the data-* family
    // states retention properties of MTJ-backed cells only.
    if (tl_.t_stop <= 0.0 || !tl_.has_mtj) return std::move(out_);

    off_ = collect_off_windows(tl_, circuit_, netlist_, opt_.vdd);
    const std::vector<Event> events =
        extract_events(tl_, off_, opt_.clock_period);

    // Forward pass = least fixpoint: the event order of one schedule is
    // total, so the abstract state after each event is already its fixpoint
    // value (join() in lattice.h is what branching schedules would need).
    CellState st;
    for (const Event& e : events) transfer(e, st);
    return std::move(out_);
  }

 private:
  void emit(const char* rule, std::string message, const Event& e,
            const char* fallback_phase) {
    Diagnostic d;
    d.rule = rule;
    d.severity = default_severity(rule);
    d.message = std::move(message);
    if (e.signal != nullptr) {
      d.device = e.signal->name;
      d.line = e.signal->line;
    }
    d.phase = tl_.phase_at(e.t);
    if (d.phase.empty()) d.phase = fallback_phase;
    out_.push_back(std::move(d));
  }

  void transfer(const Event& e, CellState& st) {
    switch (e.kind) {
      case Event::Kind::kWrite:
        // A write re-validates the latch with a fresh generation even after
        // a loss (the new bit simply replaces whatever settled at wake-up).
        st.latch_gen = ++generation_;
        st.state = DataState::kVolatileDirty;
        last_write_t_ = e.t;
        break;

      case Event::Kind::kStore: {
        if (e.cut_by_gate) {
          // protocol-store-gate-overlap owns the malformed pulse; the NV
          // generation simply does not advance here.
          break;
        }
        if (e.window.duration() + kEps < opt_.mtj_write_pulse) {
          std::ostringstream msg;
          msg << "store pulse on '" << (e.signal ? e.signal->name : "?")
              << "' over [" << ns(e.window.t0) << ", " << ns(e.window.t1)
              << "] lasts " << ns(e.window.duration())
              << ", shorter than the " << ns(opt_.mtj_write_pulse)
              << " MTJ switching time at the configured overdrive: the CIMS "
                 "switch cannot complete, so the nonvolatile contents keep "
                 "generation "
              << gen_name(st.nv_gen) << " instead of advancing to "
              << gen_name(st.latch_gen);
          emit(rules::kDataStoreTruncated, msg.str(), e, "store");
          break;  // NV generation unchanged
        }
        if (st.nv_known() && st.nv_gen == st.latch_gen &&
            st.state != DataState::kLost) {
          std::ostringstream msg;
          msg << "store pulse on '" << (e.signal ? e.signal->name : "?")
              << "' at " << ns(e.window.t0) << " rewrites generation "
              << gen_name(st.latch_gen)
              << " that the MTJs already hold (no write since the store at "
              << ns(last_store_t_) << "): the CIMS write current is pure "
              << "energy waste";
          if (opt_.store_energy_hint > 0.0) {
            msg << " (~" << util::si_format(opt_.store_energy_hint, "J")
                << " per characterized store at this parameter point)";
          }
          emit(rules::kDataRedundantStore, msg.str(), e, "store");
        }
        st.nv_gen = st.latch_gen;
        if (st.state != DataState::kLost) st.state = DataState::kStoredClean;
        last_store_t_ = e.window.t0;
        break;
      }

      case Event::Kind::kGateOff: {
        if (st.state == DataState::kLost) break;
        const int nv = st.nv_known() ? st.nv_gen : -1;
        if (st.latch_gen > 0 && st.latch_gen > nv) {
          std::ostringstream msg;
          msg << "power gated off at " << ns(e.window.t0)
              << " while the latch holds generation "
              << gen_name(st.latch_gen) << " (written at "
              << ns(last_write_t_) << ") and the MTJs hold "
              << gen_name(nv)
              << ": the rail collapse destroys data that exists nowhere "
                 "else";
          Event attributed = e;
          attributed.signal = off_signal();
          emit(rules::kDataLostInOffWindow, msg.str(), attributed,
               "power-off");
        }
        st.lost_gen = st.latch_gen;
        st.state = DataState::kLost;
        break;
      }

      case Event::Kind::kPowerUp:
        // The recovery alone re-latches nothing; a following restore (or a
        // fresh write) must repair the LOST state.
        break;

      case Event::Kind::kRestore: {
        if (st.nv_known() && st.lost_gen >= 0 && st.nv_gen < st.lost_gen) {
          std::ostringstream msg;
          msg << "restore pulse on '" << (e.signal ? e.signal->name : "?")
              << "' at " << ns(e.window.t0) << " re-latches MTJ generation "
              << gen_name(st.nv_gen) << ", but the cell held generation "
              << gen_name(st.lost_gen)
              << " at gate-off: the cell wakes up with stale data";
          emit(rules::kDataStaleRestore, msg.str(), e, "restore");
          st.state = DataState::kStoredStale;
        } else {
          st.state = DataState::kRestored;
        }
        st.latch_gen = st.nv_known() ? st.nv_gen : 0;
        break;
      }

      case Event::Kind::kRead:
        if (st.state == DataState::kLost) {
          std::ostringstream msg;
          msg << "word line '" << (e.signal ? e.signal->name : "?")
              << "' reads the cell at " << ns(e.window.t0)
              << " while its latch state is LOST (no restore since the "
                 "gate-off destroyed generation "
              << gen_name(st.lost_gen)
              << "): the access returns whatever the core settled into at "
                 "power-up";
          emit(rules::kDataReadBeforeRestore, msg.str(), e, "active");
          // One report per loss: further reads of the same lost state add
          // no information.
          st.state = DataState::kStoredStale;
        }
        break;
    }
  }

  // Attribution signal for synthesized gate-off edges: the power gate when
  // one exists, else the collapsing rail.
  const temporal::SignalTimeline* off_signal() const {
    if (const auto* pg = tl_.find_role(temporal::SignalRole::kPowerGate)) {
      return pg;
    }
    return tl_.find_role(temporal::SignalRole::kPower);
  }

  static std::string gen_name(int gen) {
    if (gen < 0) return "(never stored)";
    if (gen == 0) return "0 (power-up contents)";
    return std::to_string(gen);
  }

  const Timeline& tl_;
  const DataflowOptions& opt_;
  const spice::Circuit* circuit_;
  const spice::ParsedNetlist* netlist_;
  std::vector<Window> off_;
  std::vector<Diagnostic> out_;
  int generation_ = 0;
  double last_write_t_ = 0.0;
  double last_store_t_ = 0.0;
};

}  // namespace

DataflowOptions DataflowOptions::from_paper(const models::PaperParams& pp) {
  DataflowOptions opt;
  opt.vdd = pp.vdd;
  opt.clock_period = pp.clock_period();
  opt.mtj_write_pulse =
      required_store_pulse(pp.mtj, pp.store_current_factor, pp.store_pulse);
  return opt;
}

double DataflowOptions::required_store_pulse(const models::MTJParams& mtj,
                                             double store_current_factor,
                                             double fallback) {
  // Precessional CIMS closure (models/mtj.h): t_sw = tau0 / (I/Ic - 1) at
  // I = factor * Ic.  At or below critical the switch never completes.
  if (store_current_factor > 1.0) {
    return mtj.tau0 / (store_current_factor - 1.0);
  }
  return fallback;
}

std::vector<Diagnostic> check_dataflow(const temporal::Timeline& timeline,
                                       const DataflowOptions& options,
                                       const spice::Circuit* circuit,
                                       const spice::ParsedNetlist* netlist) {
  return DataflowChecker(timeline, options, circuit, netlist).run();
}

}  // namespace nvsram::lint::dataflow
