#include "lint/diagnostic.h"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace nvsram::lint {

const char* to_string(Severity s) {
  switch (s) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

std::string Diagnostic::format() const {
  std::ostringstream ss;
  ss << to_string(severity) << '[' << rule << "]: " << message;
  if (line >= 0) ss << " (line " << line << ')';
  if (!phase.empty()) ss << " (phase " << phase << ')';
  if (!instance_path.empty()) ss << " (in " << instance_path << ')';
  return ss.str();
}

std::string Diagnostic::dedup_key() const {
  // The instance path appears in device/node names as a "X3.X17." prefix
  // (and in `instance_path` as "X3/X17"); stripping it makes the key equal
  // across all instances of one definition.
  std::string prefix;
  if (!instance_path.empty()) {
    prefix = instance_path + "/";
    std::replace(prefix.begin(), prefix.end(), '/', '.');
  }
  auto strip = [&prefix](const std::string& s) {
    if (!prefix.empty() && s.compare(0, prefix.size(), prefix) == 0) {
      return s.substr(prefix.size());
    }
    return s;
  };
  return rule + "|" + strip(device) + "|" + strip(node);
}

std::ostream& operator<<(std::ostream& os, const Diagnostic& d) {
  return os << d.format();
}

}  // namespace nvsram::lint
