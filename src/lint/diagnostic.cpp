#include "lint/diagnostic.h"

#include <ostream>
#include <sstream>

namespace nvsram::lint {

const char* to_string(Severity s) {
  switch (s) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

std::string Diagnostic::format() const {
  std::ostringstream ss;
  ss << to_string(severity) << '[' << rule << "]: " << message;
  if (line >= 0) ss << " (line " << line << ')';
  if (!phase.empty()) ss << " (phase " << phase << ')';
  return ss.str();
}

std::ostream& operator<<(std::ostream& os, const Diagnostic& d) {
  return os << d.format();
}

}  // namespace nvsram::lint
