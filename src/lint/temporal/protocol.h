// Protocol state-machine checks over a Timeline.
//
// The paper's benchmark (Fig. 5) only means something when the stimulus
// schedule respects the architecture's power-gating protocol:
//
//   NVPG  read/write -> store -> gate off -> ... -> power up -> restore ->
//         first access.  The store must complete (every step at least the
//         MTJ write-pulse width at the configured overdrive) before the
//         gate-off edge; the restore pulse must still be asserted when the
//         virtual rail recovers; no word-line access may precede a
//         completed restore after power-up.
//   NOF   the store is embedded in every access cycle: each gate-off must
//         be preceded by a store since the previous power-up, and the clock
//         period must accommodate the store pulse.
//   OSR   sleep keeps the (virtual) rail above the bistable retention
//         floor; there is nothing nonvolatile to store.
//
// Violations surface as `protocol-*` lint diagnostics with netlist line or
// testbench phase attribution — before any transient solve runs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "lint/diagnostic.h"
#include "lint/temporal/timeline.h"

namespace nvsram::models {
struct PaperParams;
}  // namespace nvsram::models

namespace nvsram::lint::temporal {

struct TemporalOptions {
  enum class Arch { kAuto, kNVPG, kNOF, kOSR };
  // kAuto infers which checks apply from the roles present in the timeline
  // (netlists); testbench exports pass the architecture explicitly.
  Arch arch = Arch::kAuto;

  double vdd = 0.9;                 // nominal rail
  // Minimum pulse width that completes a CIMS write at the configured store
  // overdrive: tau0 / (store_current_factor - 1).
  double mtj_write_pulse = 6e-9;
  double store_pulse = 10e-9;       // configured store step width
  // Access-cycle budget.  For arch kNOF this is the *effective* (stretched)
  // NOF cycle — the paper embeds the store by lengthening the cycle, so NOF
  // callers must pass clock + store here; protocol-clock-store fires when
  // even the stretched budget cannot fit the store pulse.
  double clock_period = 1.0 / 300e6;
  double retention_floor = 0.45;    // min rail that still holds the 6T core
  // A power-off window shorter than this cannot even complete the rail
  // collapse + recovery ramps (advisory).
  double min_shutdown = 2e-9;

  static TemporalOptions from_paper(const models::PaperParams& pp);

  // Stable hash over every threshold (characterization-cache invalidation:
  // cached energies are only valid for the lint config that admitted them).
  std::uint64_t fingerprint() const;
};

// Runs every protocol-* check that applies to this timeline.  Diagnostics
// carry the offending signal name (device), the time window in the message,
// the netlist line when known, and the covering phase name when the
// timeline came from a testbench schedule.
std::vector<Diagnostic> check_timeline(const Timeline& timeline,
                                       const TemporalOptions& options);

// Parses a `.arch` card value ("nvpg" / "nof" / "osr", case-insensitive)
// into the explicit architecture; nullopt for anything else.  kAuto is not
// spellable — omitting the card means auto-inference.
std::optional<TemporalOptions::Arch> arch_from_string(const std::string& s);

}  // namespace nvsram::lint::temporal
