#include "lint/temporal/timeline.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "spice/circuit.h"
#include "spice/elements.h"
#include "spice/fet_element.h"
#include "spice/mtj_element.h"
#include "spice/netlist_parser.h"

namespace nvsram::lint::temporal {

namespace {

// Comparing driver levels: anything closer than this is "the same level"
// (drivers in this technology move in >= 10 mV steps).
constexpr double kLevelEps = 1e-6;
// Distinguishing schedule times: edges in this code base are >= 1 ps apart.
constexpr double kTimeEps = 1e-15;

bool same_level(double a, double b) { return std::fabs(a - b) < kLevelEps; }
bool same_time(double a, double b) { return std::fabs(a - b) < kTimeEps; }

}  // namespace

double SignalTimeline::level_at(double t) const {
  double v = initial;
  for (const Transition& tr : transitions) {
    if (t < tr.t0) return v;
    if (t <= tr.t1) {
      if (tr.t1 <= tr.t0) return tr.v1;
      const double f = (t - tr.t0) / (tr.t1 - tr.t0);
      return tr.v0 + f * (tr.v1 - tr.v0);
    }
    v = tr.v1;
  }
  return v;
}

double SignalTimeline::max_level() const {
  double m = initial;
  for (const Transition& tr : transitions) m = std::max({m, tr.v0, tr.v1});
  return m;
}

double SignalTimeline::min_level() const {
  double m = initial;
  for (const Transition& tr : transitions) m = std::min({m, tr.v0, tr.v1});
  return m;
}

std::vector<Window> SignalTimeline::windows_above(double threshold,
                                                  double t_stop) const {
  // Walk the piecewise-linear corner list, interpolating crossings.
  std::vector<std::pair<double, double>> pts;
  pts.emplace_back(0.0, initial);
  for (const Transition& tr : transitions) {
    pts.emplace_back(tr.t0, tr.v0);
    pts.emplace_back(tr.t1, tr.v1);
  }
  pts.emplace_back(std::max(t_stop, pts.back().first), pts.back().second);

  std::vector<Window> out;
  bool high = pts.front().second >= threshold;
  double open = high ? 0.0 : -1.0;
  for (std::size_t i = 1; i < pts.size(); ++i) {
    const auto& [ta, va] = pts[i - 1];
    const auto& [tb, vb] = pts[i];
    const bool high_b = vb >= threshold;
    if (high_b == high) continue;
    double t_cross = tb;
    if (tb > ta && !same_level(va, vb)) {
      t_cross = ta + (threshold - va) / (vb - va) * (tb - ta);
    }
    if (high_b) {
      open = t_cross;
    } else if (open >= 0.0) {
      if (t_cross > open) out.push_back({open, t_cross});
      open = -1.0;
    }
    high = high_b;
  }
  if (high && open >= 0.0 && t_stop > open) out.push_back({open, t_stop});
  return out;
}

std::vector<Window> SignalTimeline::windows_below(double threshold,
                                                  double t_stop) const {
  // Complement of windows_above over [0, t_stop].
  const auto above = windows_above(threshold, t_stop);
  std::vector<Window> out;
  double cursor = 0.0;
  for (const Window& w : above) {
    if (w.t0 > cursor) out.push_back({cursor, w.t0});
    cursor = w.t1;
  }
  if (t_stop > cursor) out.push_back({cursor, t_stop});
  return out;
}

const SignalTimeline* Timeline::find_role(SignalRole role) const {
  for (const auto& s : signals) {
    if (s.role == role) return &s;
  }
  return nullptr;
}

std::vector<const SignalTimeline*> Timeline::with_role(SignalRole role) const {
  std::vector<const SignalTimeline*> out;
  for (const auto& s : signals) {
    if (s.role == role) out.push_back(&s);
  }
  return out;
}

std::string Timeline::phase_at(double t) const {
  for (const PhaseSpan& ph : phases) {
    if (t >= ph.t0 && t <= ph.t1) return ph.name;
  }
  return "";
}

namespace {

std::string ns(double t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", t * 1e9);
  return buf;
}

std::string volts(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

std::string Timeline::describe() const {
  std::ostringstream os;
  os << "timeline " << origin << " t_stop=" << ns(t_stop) << "ns mtj="
     << (has_mtj ? "yes" : "no") << "\n";
  for (const auto& s : signals) {
    os << "  " << s.name << " [" << to_string(s.role) << "] init="
       << volts(s.initial) << "V";
    if (s.transitions.empty()) {
      os << " (constant)\n";
      continue;
    }
    os << "\n";
    for (const Transition& tr : s.transitions) {
      os << "    " << ns(tr.t0) << ".." << ns(tr.t1) << "ns: "
         << volts(tr.v0) << " -> " << volts(tr.v1) << "V\n";
    }
  }
  for (const PhaseSpan& ph : phases) {
    os << "  phase " << ph.name << " " << ns(ph.t0) << ".." << ns(ph.t1)
       << "ns\n";
  }
  return os.str();
}

namespace {

// Reconstructs a SignalTimeline from a SourceSpec-backed source by sampling
// at breakpoints: corners of PULSE and PWL specs are exact there, and
// maximal monotone runs merge into single Transitions (a PULSE rise is one
// edge, not fifty).
void build_transitions(const spice::VSource& src, double t_stop,
                       SignalTimeline& out) {
  std::vector<double> times;
  src.breakpoints(t_stop > 0.0 ? t_stop : 1.0, times);
  times.push_back(0.0);
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end(),
                          [](double a, double b) { return same_time(a, b); }),
              times.end());

  out.initial = src.value(0.0);
  double prev_t = times.empty() ? 0.0 : times.front();
  double prev_v = out.initial;
  for (std::size_t i = 1; i < times.size(); ++i) {
    const double t = times[i];
    const double v = src.value(t);
    if (!same_level(v, prev_v)) {
      const double dir = v - prev_v;
      // Extend the previous transition while still moving the same way and
      // contiguous in breakpoint time.
      if (!out.transitions.empty()) {
        Transition& last = out.transitions.back();
        const double last_dir = last.v1 - last.v0;
        if (same_time(last.t1, prev_t) && last_dir * dir > 0.0) {
          last.t1 = t;
          last.v1 = v;
          prev_t = t;
          prev_v = v;
          continue;
        }
      }
      out.transitions.push_back({prev_t, t, prev_v, v});
    }
    prev_t = t;
    prev_v = v;
  }
}

}  // namespace

Timeline extract_timeline(const spice::ParsedNetlist& netlist) {
  Timeline tl;
  tl.origin = "netlist";
  if (const auto& tran = netlist.tran_card()) tl.t_stop = tran->t_stop;

  const spice::Circuit& ckt = netlist.circuit();
  double last_event = 0.0;
  for (const auto& dev : ckt.devices()) {
    const auto* src = dynamic_cast<const spice::VSource*>(dev.get());
    if (src == nullptr) {
      if (dynamic_cast<const spice::MTJElement*>(dev.get()) != nullptr) {
        tl.has_mtj = true;
      } else if (dynamic_cast<const spice::FinFETElement*>(dev.get()) !=
                 nullptr) {
        tl.has_fet = true;
      }
      continue;
    }
    SignalTimeline sig;
    sig.name = src->name();
    sig.line = netlist.device_line(src->name());
    // Positive terminal names the driven line.
    const auto terms = src->terminals();
    const std::string node_name =
        terms.empty() ? "" : ckt.node_name(terms.front().node);
    const std::string* annotated = netlist.role_annotation(src->name());
    if (annotated != nullptr) {
      sig.role = role_from_string(*annotated).value_or(SignalRole::kOther);
    } else {
      sig.role = classify_role(src->name(), node_name);
    }
    build_transitions(*src, tl.t_stop, sig);
    if (!sig.transitions.empty()) {
      last_event = std::max(last_event, sig.transitions.back().t1);
    }
    tl.signals.push_back(std::move(sig));
  }
  if (tl.t_stop <= 0.0) tl.t_stop = last_event;
  return tl;
}

}  // namespace nvsram::lint::temporal
