#include "lint/temporal/protocol.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <sstream>

#include "lint/rules.h"
#include "models/paper_params.h"
#include "util/units.h"

namespace nvsram::lint::temporal {

namespace {

constexpr double kEps = 1e-12;  // 1 ps: below any schedulable edge spacing

std::string ns(double t) { return util::si_format(t, "s"); }

// Minimum of the piecewise-linear level over a window.
double min_level_in(const SignalTimeline& s, const Window& w) {
  double m = std::min(s.level_at(w.t0), s.level_at(w.t1));
  for (const Transition& tr : s.transitions) {
    if (tr.t0 >= w.t0 && tr.t0 <= w.t1) m = std::min(m, tr.v0);
    if (tr.t1 >= w.t0 && tr.t1 <= w.t1) m = std::min(m, tr.v1);
  }
  return m;
}

// Expands a threshold-crossing window to the full extent of the transitions
// that produced its edges, so [gate-off start .. recovery complete] rather
// than [mid-rise .. mid-fall].
Window widen_to_edges(const SignalTimeline& s, Window w) {
  for (const Transition& tr : s.transitions) {
    if (w.t0 >= tr.t0 - kEps && w.t0 <= tr.t1 + kEps) w.t0 = tr.t0;
    if (w.t1 >= tr.t0 - kEps && w.t1 <= tr.t1 + kEps) {
      w.t1 = std::max(w.t1, tr.t1);
    }
  }
  return w;
}

class ProtocolChecker {
 public:
  ProtocolChecker(const Timeline& tl, const TemporalOptions& opt)
      : tl_(tl), opt_(opt) {}

  std::vector<Diagnostic> run() {
    if (tl_.t_stop <= 0.0) return std::move(out_);  // nothing scheduled

    pwr_ = tl_.find_role(SignalRole::kPower);
    pg_ = tl_.find_role(SignalRole::kPowerGate);
    sr_ = tl_.find_role(SignalRole::kStoreEnable);
    ctrl_ = tl_.find_role(SignalRole::kRestoreCtrl);
    pch_ = tl_.find_role(SignalRole::kPrecharge);

    find_power_off_windows();
    collect_write_events();
    check_sleep_retention();
    classify_store_windows();
    check_store_steps();
    check_power_cycles();
    check_wordline_precharge();
    if (opt_.arch == TemporalOptions::Arch::kNOF) check_nof_clock();
    return std::move(out_);
  }

 private:
  struct SrWindow {
    Window w;
    enum class Kind { kStore, kRestore, kDeadStore } kind = Kind::kStore;
  };

  void emit(const char* rule, std::string message, const SignalTimeline* sig,
            double at_time) {
    Diagnostic d;
    d.rule = rule;
    d.severity = default_severity(rule);
    d.message = std::move(message);
    if (sig != nullptr) {
      d.device = sig->name;
      d.line = sig->line;
    }
    d.phase = tl_.phase_at(at_time);
    out_.push_back(std::move(d));
  }

  bool power_off_at(double t) const {
    for (const Window& po : power_off_) {
      if (t >= po.t0 && t <= po.t1) return true;
    }
    return false;
  }

  // Gate-off windows come from the power-gate line (high = super cutoff) and
  // from full collapses of the rail itself (netlists that gate by driving
  // VDD to zero).
  void find_power_off_windows() {
    if (pg_ != nullptr && pg_->max_level() > 0.3 * opt_.vdd) {
      const double thr = 0.5 * pg_->max_level();
      for (Window w : pg_->windows_above(thr, tl_.t_stop)) {
        power_off_.push_back(widen_to_edges(*pg_, w));
      }
    }
    if (pwr_ != nullptr) {
      const double nominal = std::max(pwr_->max_level(), opt_.vdd);
      for (Window w : pwr_->windows_below(0.95 * nominal, tl_.t_stop)) {
        if (min_level_in(*pwr_, w) < 0.1 * nominal) {
          power_off_.push_back(widen_to_edges(*pwr_, w));
        }
      }
    }
    std::sort(power_off_.begin(), power_off_.end(),
              [](const Window& a, const Window& b) { return a.t0 < b.t0; });
  }

  // Times at which the cell is written (leaving it ahead of its MTJs).
  // Primary evidence: a write-driver assert.  Netlists that drive the
  // bitlines with ideal sources instead: a bitline transition while a word
  // line is high.  Only when the timeline carries neither write drivers nor
  // bitlines do word-line asserts count (conservative fallback).
  void collect_write_events() {
    const auto wds = tl_.with_role(SignalRole::kWriteDriver);
    for (const SignalTimeline* wd : wds) {
      if (wd->max_level() < 0.05) continue;
      for (const Window& w : wd->windows_above(0.5 * wd->max_level(),
                                               tl_.t_stop)) {
        writes_.push_back(w.t0);
      }
    }
    const auto bls = tl_.with_role(SignalRole::kBitline);
    if (wds.empty() && !bls.empty()) {
      std::vector<Window> wl_high;
      for (const SignalTimeline* wl : tl_.with_role(SignalRole::kWordline)) {
        if (wl->max_level() < 0.05) continue;
        const auto ws = wl->windows_above(0.5 * wl->max_level(), tl_.t_stop);
        wl_high.insert(wl_high.end(), ws.begin(), ws.end());
      }
      // The bitline settles up to ~a clock period before the word line
      // rises, so look back that far when deciding whether an access drives
      // new data.
      for (const Window& w : wl_high) {
        bool wrote = false;
        for (const SignalTimeline* bl : bls) {
          for (const Transition& tr : bl->transitions) {
            if (tr.t1 > w.t0 - opt_.clock_period - kEps &&
                tr.t0 < w.t1 + kEps) {
              wrote = true;
            }
          }
        }
        if (wrote) writes_.push_back(w.t0);
      }
    }
    if (wds.empty() && bls.empty()) {
      for (const SignalTimeline* wl : tl_.with_role(SignalRole::kWordline)) {
        if (wl->max_level() < 0.05) continue;
        for (const Window& w : wl->windows_above(0.5 * wl->max_level(),
                                                 tl_.t_stop)) {
          writes_.push_back(w.t0);
        }
      }
    }
    std::sort(writes_.begin(), writes_.end());
  }

  // OSR / sleep retention: any rail sag that is not a full collapse must
  // stay above the bistable retention floor.
  void check_sleep_retention() {
    if (pwr_ == nullptr) return;
    const double nominal = std::max(pwr_->max_level(), opt_.vdd);
    for (const Window& w : pwr_->windows_below(0.95 * nominal, tl_.t_stop)) {
      const double vmin = min_level_in(*pwr_, w);
      if (vmin < 0.1 * nominal) continue;  // full collapse: a shutdown
      if (vmin < opt_.retention_floor) {
        std::ostringstream msg;
        msg << "sleep level of rail '" << pwr_->name << "' sags to "
            << util::si_format(vmin, "V") << " over [" << ns(w.t0) << ", "
            << ns(w.t1) << "], below the "
            << util::si_format(opt_.retention_floor, "V")
            << " retention floor of the bistable core: data is lost without "
               "a preceding store";
        emit(rules::kProtocolSleepRetention, msg.str(), pwr_,
             0.5 * (w.t0 + w.t1));
      }
    }
  }

  // Splits SR assert windows into store / restore / dead-store (entirely
  // inside a power-off window: the core is unpowered, nothing can flow).
  void classify_store_windows() {
    if (sr_ == nullptr || sr_->max_level() < 0.05) return;
    const double thr = 0.5 * sr_->max_level();
    for (const Window& w : sr_->windows_above(thr, tl_.t_stop)) {
      SrWindow sw;
      sw.w = w;
      bool recovery_inside = false;
      bool fully_off = false;
      bool starts_on_ends_off = false;
      for (const Window& po : power_off_) {
        if (po.t1 > w.t0 - kEps && po.t1 <= w.t1 + kEps) {
          recovery_inside = true;
        }
        if (w.t0 >= po.t0 - kEps && w.t1 <= po.t1 + kEps) fully_off = true;
        if (w.t0 < po.t0 - kEps && w.t1 > po.t0 + kEps && w.t1 <= po.t1) {
          starts_on_ends_off = true;
        }
      }
      if (recovery_inside) {
        sw.kind = SrWindow::Kind::kRestore;
      } else if (fully_off) {
        sw.kind = SrWindow::Kind::kDeadStore;
      } else if (starts_on_ends_off) {
        // Store begun with power on but the gate cuts it mid-pulse.
        std::ostringstream msg;
        msg << "store pulse on '" << sr_->name << "' over [" << ns(w.t0)
            << ", " << ns(w.t1) << "] overlaps the gate-off edge: the "
            << "virtual rail collapses mid-store and the MTJ write current "
            << "is cut";
        emit(rules::kProtocolStoreGateOverlap, msg.str(), sr_, w.t0);
        sw.kind = SrWindow::Kind::kStore;
      }
      sr_windows_.push_back(sw);
    }

    for (const SrWindow& sw : sr_windows_) {
      if (sw.kind != SrWindow::Kind::kDeadStore) continue;
      std::ostringstream msg;
      msg << "SR pulse on '" << sr_->name << "' over [" << ns(sw.w.t0) << ", "
          << ns(sw.w.t1) << "] lies entirely inside a power-off window and "
          << "de-asserts before VDD recovery: a restore must still be "
          << "asserted when the rail comes back (a store here drives no "
          << "current at all)";
      emit(rules::kProtocolRestoreOrder, msg.str(), sr_, sw.w.t0);
    }
  }

  // Every powered store step (contiguous CTRL level inside an SR assert)
  // must be at least the MTJ write-pulse width at the configured overdrive.
  void check_store_steps() {
    if (!tl_.has_mtj || sr_ == nullptr) return;
    for (const SrWindow& sw : sr_windows_) {
      if (sw.kind != SrWindow::Kind::kStore) continue;
      std::vector<double> cuts;
      if (ctrl_ != nullptr) {
        for (const Transition& tr : ctrl_->transitions) {
          if (std::fabs(tr.v1 - tr.v0) < 1e-6) continue;
          const double mid = 0.5 * (tr.t0 + tr.t1);
          if (mid > sw.w.t0 + kEps && mid < sw.w.t1 - kEps) cuts.push_back(mid);
        }
      }
      std::sort(cuts.begin(), cuts.end());
      double prev = sw.w.t0;
      cuts.push_back(sw.w.t1);
      int step_index = 0;
      for (double cut : cuts) {
        const double width = cut - prev;
        if (width > kEps && width + kEps < opt_.mtj_write_pulse) {
          std::ostringstream msg;
          msg << "store step " << step_index << " on '" << sr_->name
              << "' over [" << ns(prev) << ", " << ns(cut) << "] lasts "
              << ns(width) << ", shorter than the " << ns(opt_.mtj_write_pulse)
              << " MTJ write pulse required at the configured overdrive: the "
              << "CIMS switch cannot complete and the store silently fails";
          emit(rules::kProtocolStoreIncomplete, msg.str(), sr_, prev);
        }
        prev = cut;
        ++step_index;
      }
    }
  }

  // Per power-off window: a completed store must precede gate-off, a
  // restore must straddle the recovery, and no word line may assert before
  // the restore completes.  Advisory: the window must at least fit the
  // collapse/recovery ramps.
  void check_power_cycles() {
    double prev_power_up = 0.0;
    for (const Window& po : power_off_) {
      const SignalTimeline* attrib = pg_ != nullptr ? pg_ : pwr_;
      if (po.duration() < opt_.min_shutdown) {
        std::ostringstream msg;
        msg << "power-off window [" << ns(po.t0) << ", " << ns(po.t1)
            << "] lasts " << ns(po.duration()) << ", shorter than the "
            << ns(opt_.min_shutdown)
            << " needed for the rail collapse + recovery ramps; the domain "
               "never actually powers down";
        emit(rules::kProtocolShutdownShort, msg.str(), attrib, po.t0);
      }

      if (tl_.has_mtj) {
        // A write left the cell ahead of its MTJs; a store must complete
        // after the last such write and before the gate-off.  Read-only
        // power cycles (NOF reads) are exempt: the MTJs already hold the
        // data.
        double last_write = -1.0;
        for (double w : writes_) {
          if (w > prev_power_up - kEps && w < po.t0 - kEps) {
            last_write = std::max(last_write, w);
          }
        }
        bool store_found = false;
        for (const SrWindow& sw : sr_windows_) {
          if (sw.kind != SrWindow::Kind::kStore) continue;
          if (sw.w.t1 <= po.t0 + kEps && sw.w.t1 > last_write) {
            store_found = true;
          }
        }
        if (last_write >= 0.0 && !store_found) {
          std::ostringstream msg;
          msg << "power gated off at " << ns(po.t0)
              << " with no completed MTJ store after the write at "
              << ns(last_write)
              << (sr_ == nullptr ? " (no store-enable signal in this schedule)"
                                 : "")
              << ": the written data is lost on collapse";
          emit(rules::kProtocolStoreMissing, msg.str(),
               sr_ != nullptr ? sr_ : attrib, po.t0);
        }

        // Restore straddling the recovery edge.
        double restore_end = -1.0;
        for (const SrWindow& sw : sr_windows_) {
          if (sw.kind != SrWindow::Kind::kRestore) continue;
          if (po.t1 > sw.w.t0 - kEps && po.t1 <= sw.w.t1 + kEps) {
            restore_end = std::max(restore_end, sw.w.t1);
          }
        }
        const double next_access = first_wordline_after(po.t1);
        if (restore_end < 0.0) {
          if (next_access >= 0.0) {
            std::ostringstream msg;
            msg << "power-up at " << ns(po.t1)
                << " has no restore (SR) pulse overlapping the rail "
                << "recovery, but a word-line access follows at "
                << ns(next_access)
                << ": the core re-latches random data instead of the MTJ "
                << "contents";
            emit(rules::kProtocolRestoreOrder, msg.str(),
                 sr_ != nullptr ? sr_ : attrib, po.t1);
          }
        } else if (next_access >= 0.0 && next_access + kEps < restore_end) {
          std::ostringstream msg;
          msg << "word line asserts at " << ns(next_access)
              << " before the restore completes at " << ns(restore_end)
              << ": the access disturbs the cell while it is still "
              << "re-developing from the MTJs";
          emit(rules::kProtocolRestoreOrder, msg.str(), sr_, next_access);
        }
      }
      prev_power_up = po.t1;
    }
  }

  // Earliest word-line assert at/after t; -1 when none.
  double first_wordline_after(double t) const {
    double best = -1.0;
    for (const SignalTimeline* wl : tl_.with_role(SignalRole::kWordline)) {
      if (wl->max_level() < 0.05) continue;
      for (const Window& w : wl->windows_above(0.5 * wl->max_level(),
                                               tl_.t_stop)) {
        if (w.t0 >= t - kEps && (best < 0.0 || w.t0 < best)) best = w.t0;
      }
    }
    return best;
  }

  // Word line asserting while the precharge devices still drive the
  // bitlines (precharge gate LOW = active) shorts the cell into the
  // precharge pull-ups for the overlap.
  void check_wordline_precharge() {
    if (pch_ == nullptr) return;
    const double pch_thr = 0.5 * std::max(pch_->max_level(), opt_.vdd);
    const auto active = pch_->windows_below(pch_thr, tl_.t_stop);
    for (const SignalTimeline* wl : tl_.with_role(SignalRole::kWordline)) {
      if (wl->max_level() < 0.05) continue;
      for (const Window& w : wl->windows_above(0.5 * wl->max_level(),
                                               tl_.t_stop)) {
        for (const Window& a : active) {
          const double overlap =
              std::min(w.t1, a.t1) - std::max(w.t0, a.t0);
          if (overlap > 0.05 * w.duration() + kEps) {
            std::ostringstream msg;
            msg << "word line '" << wl->name << "' is asserted over ["
                << ns(w.t0) << ", " << ns(w.t1) << "] while the precharge on '"
                << pch_->name << "' is still active (" << ns(overlap)
                << " overlap): the access fights the precharge pull-ups";
            emit(rules::kProtocolWlPrechargeOverlap, msg.str(), wl,
                 std::max(w.t0, a.t0));
            break;
          }
        }
      }
    }
  }

  // NOF embeds the store inside every access cycle; a clock period shorter
  // than the store pulse cannot schedule it.
  void check_nof_clock() {
    if (opt_.clock_period + kEps < opt_.store_pulse) {
      std::ostringstream msg;
      msg << "NOF clock period " << ns(opt_.clock_period)
          << " is shorter than the " << ns(opt_.store_pulse)
          << " store pulse it must embed in every access cycle";
      emit(rules::kProtocolClockStore, msg.str(), nullptr, 0.0);
    }
  }

  const Timeline& tl_;
  const TemporalOptions& opt_;
  const SignalTimeline* pwr_ = nullptr;
  const SignalTimeline* pg_ = nullptr;
  const SignalTimeline* sr_ = nullptr;
  const SignalTimeline* ctrl_ = nullptr;
  const SignalTimeline* pch_ = nullptr;
  std::vector<Window> power_off_;
  std::vector<SrWindow> sr_windows_;
  std::vector<double> writes_;
  std::vector<Diagnostic> out_;
};

// 64-bit FNV-1a over raw bytes; doubles hash via their bit pattern.
std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

TemporalOptions TemporalOptions::from_paper(const models::PaperParams& pp) {
  TemporalOptions opt;
  opt.vdd = pp.vdd;
  opt.store_pulse = pp.store_pulse;
  opt.clock_period = pp.clock_period();
  opt.retention_floor = pp.vvdd_retention_floor;
  if (pp.store_current_factor > 1.0) {
    opt.mtj_write_pulse = pp.mtj.tau0 / (pp.store_current_factor - 1.0);
  } else {
    opt.mtj_write_pulse = pp.store_pulse;
  }
  return opt;
}

std::uint64_t TemporalOptions::fingerprint() const {
  std::uint64_t h = 1469598103934665603ull;
  const int arch_tag = static_cast<int>(arch);
  h = fnv1a(h, &arch_tag, sizeof(arch_tag));
  for (double v : {vdd, mtj_write_pulse, store_pulse, clock_period,
                   retention_floor, min_shutdown}) {
    h = fnv1a(h, &v, sizeof(v));
  }
  return h;
}

std::optional<TemporalOptions::Arch> arch_from_string(const std::string& s) {
  std::string lower;
  lower.reserve(s.size());
  for (char c : s) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "nvpg") return TemporalOptions::Arch::kNVPG;
  if (lower == "nof") return TemporalOptions::Arch::kNOF;
  if (lower == "osr") return TemporalOptions::Arch::kOSR;
  return std::nullopt;
}

std::vector<Diagnostic> check_timeline(const Timeline& timeline,
                                       const TemporalOptions& options) {
  return ProtocolChecker(timeline, options).run();
}

}  // namespace nvsram::lint::temporal
