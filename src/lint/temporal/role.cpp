#include "lint/temporal/role.h"

#include <algorithm>
#include <cctype>

namespace nvsram::lint::temporal {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

// Matches a name against the role vocabulary.  Returns kOther when nothing
// fits; callers try the node name first, then the source name with its
// leading source letter stripped.
SignalRole match_name(const std::string& name) {
  if (name.empty()) return SignalRole::kOther;
  // Power rail before power gate: "vddq"/"vvdd" must not hit the "pg" rule.
  if (starts_with(name, "vvdd") || starts_with(name, "vdd") ||
      starts_with(name, "vcc") || starts_with(name, "vsup") ||
      name == "supply") {
    return SignalRole::kPower;
  }
  if (starts_with(name, "pg") || starts_with(name, "psw") ||
      starts_with(name, "pgate") || starts_with(name, "sleepb") ||
      name == "slp") {
    return SignalRole::kPowerGate;
  }
  if (starts_with(name, "wl") || name.find("word") != std::string::npos) {
    return SignalRole::kWordline;
  }
  if (starts_with(name, "pch") || starts_with(name, "prech")) {
    return SignalRole::kPrecharge;
  }
  if (starts_with(name, "wd")) return SignalRole::kWriteDriver;
  if (starts_with(name, "bl")) return SignalRole::kBitline;
  if (starts_with(name, "sr")) return SignalRole::kStoreEnable;
  if (starts_with(name, "ctrl") || starts_with(name, "ctl")) {
    return SignalRole::kRestoreCtrl;
  }
  return SignalRole::kOther;
}

}  // namespace

const char* to_string(SignalRole role) {
  switch (role) {
    case SignalRole::kPower: return "power";
    case SignalRole::kPowerGate: return "power-gate";
    case SignalRole::kWordline: return "wordline";
    case SignalRole::kBitline: return "bitline";
    case SignalRole::kPrecharge: return "precharge";
    case SignalRole::kWriteDriver: return "write-driver";
    case SignalRole::kStoreEnable: return "store-enable";
    case SignalRole::kRestoreCtrl: return "restore-ctrl";
    case SignalRole::kOther: return "other";
  }
  return "other";
}

std::optional<SignalRole> role_from_string(const std::string& id) {
  static constexpr SignalRole kAll[] = {
      SignalRole::kPower,      SignalRole::kPowerGate,
      SignalRole::kWordline,   SignalRole::kBitline,
      SignalRole::kPrecharge,  SignalRole::kWriteDriver,
      SignalRole::kStoreEnable, SignalRole::kRestoreCtrl,
      SignalRole::kOther,
  };
  const std::string want = lower(id);
  for (SignalRole r : kAll) {
    if (want == to_string(r)) return r;
  }
  return std::nullopt;
}

SignalRole classify_role(const std::string& source_name,
                         const std::string& node_name) {
  const SignalRole by_node = match_name(lower(node_name));
  if (by_node != SignalRole::kOther) return by_node;
  std::string dev = lower(source_name);
  // Strip the SPICE card letter ("Vpg" -> "pg") unless the whole name is the
  // vocabulary word itself ("vdd" stays "vdd").
  if (dev.size() > 1 && (dev[0] == 'v' || dev[0] == 'i') &&
      match_name(dev) == SignalRole::kOther) {
    dev.erase(dev.begin());
  }
  return match_name(dev);
}

}  // namespace nvsram::lint::temporal
