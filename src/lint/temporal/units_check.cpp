#include "lint/temporal/units_check.h"

#include <cmath>
#include <sstream>
#include <string>

#include "lint/rules.h"
#include "lint/temporal/timeline.h"
#include "models/mtj.h"
#include "models/paper_params.h"
#include "spice/mtj_element.h"
#include "spice/netlist_parser.h"
#include "util/units.h"

namespace nvsram::lint::temporal {

namespace {

// Plausibility ranges for this technology (14 nm FinFET + 20 nm MTJ).
constexpr double kMaxBias = 1.5;          // V: beyond gate-oxide survival
constexpr double kJcMin = 1e9;            // A/m^2
constexpr double kJcMax = 1e12;           // A/m^2
constexpr double kIcMin = 1e-7;           // A: 100 nA
constexpr double kIcMax = 1e-2;           // A: 10 mA
constexpr double kMaxHorizon = 10e-3;     // s: schedules run ns..ms

Diagnostic make(const char* rule, std::string message, std::string device,
                int line) {
  Diagnostic d;
  d.rule = rule;
  d.severity = default_severity(rule);
  d.message = std::move(message);
  d.device = std::move(device);
  d.line = line;
  return d;
}

// Checks one MTJ parameter set; `where` and `line` attribute the finding to
// a netlist device or to the PaperParams bundle.
void check_mtj_params(const models::MTJParams& mtj, const std::string& where,
                      int line, std::vector<Diagnostic>& out) {
  if (mtj.jc < kJcMin || mtj.jc > kJcMax) {
    std::ostringstream msg;
    msg << where << ": critical current density jc=" << util::sci_format(mtj.jc)
        << " A/m^2 is outside [" << util::sci_format(kJcMin, 0) << ", "
        << util::sci_format(kJcMax, 0) << "]";
    if (mtj.jc >= 1e5 && mtj.jc < kJcMin) {
      msg << "; the value looks like A/cm^2 — multiply by 1e4 (the paper's "
          << "5e6 A/cm^2 is 5e10 A/m^2)";
    }
    out.push_back(make(rules::kUnitsCurrentDensity, msg.str(), where, line));
  }

  // Recompute Ic with explicit dimensions: [A/m^2] * [m^2] must close to [A]
  // and land in the range a 20 nm-class junction can carry.
  const util::Quantity jc{mtj.jc, util::dims::kCurrentDensity};
  const util::Quantity area{mtj.area(), util::dims::kArea};
  const util::Quantity ic = jc * area;
  if (ic.dim != util::dims::kAmpere) {
    out.push_back(make(rules::kUnitsDimension,
                       where + ": Ic = jc * area has dimension [" +
                           util::to_string(ic.dim) + "], expected [A]",
                       where, line));
  } else if (ic.value < kIcMin || ic.value > kIcMax) {
    std::ostringstream msg;
    msg << where << ": derived critical current Ic = jc * area = "
        << util::to_string(ic, "A") << " is outside ["
        << util::si_format(kIcMin, "A", 0) << ", "
        << util::si_format(kIcMax, "A", 0)
        << "]: some upstream parameter was entered in the wrong units";
    out.push_back(make(rules::kUnitsDimension, msg.str(), where, line));
  }

  if (mtj.tau0 > 0.0 && (mtj.tau0 < 1e-12 || mtj.tau0 > 1e-6)) {
    out.push_back(make(rules::kUnitsTimeScale,
                       where + ": MTJ tau0 = " +
                           util::si_format(mtj.tau0, "s") +
                           " is outside the ps..us switching-dynamics range "
                           "(wrong SI prefix?)",
                       where, line));
  }
}

}  // namespace

std::vector<Diagnostic> check_timeline_units(const Timeline& tl) {
  std::vector<Diagnostic> out;
  // The bias bound is a property of the 14 nm process; generic RLC circuits
  // (no FETs, no MTJs) may legitimately run at any voltage.
  const bool process_bound = tl.has_fet || tl.has_mtj;
  for (const SignalTimeline& s : tl.signals) {
    if (!process_bound) break;
    const double hi = std::max(std::fabs(s.max_level()),
                               std::fabs(s.min_level()));
    if (hi > kMaxBias) {
      std::ostringstream msg;
      msg << "driver '" << s.name << "' reaches " << util::si_format(hi, "V")
          << ", beyond the " << util::si_format(kMaxBias, "V", 1)
          << " survivable gate bias of the 14 nm process (value in mV "
          << "entered as V?)";
      Diagnostic d = make(rules::kUnitsVoltageRange, msg.str(), s.name,
                          s.line);
      d.phase = tl.phase_at(0.0);
      out.push_back(std::move(d));
    }
  }
  if (tl.t_stop > kMaxHorizon) {
    std::ostringstream msg;
    msg << "schedule horizon " << util::si_format(tl.t_stop, "s")
        << " exceeds " << util::si_format(kMaxHorizon, "s", 0)
        << ": time values likely entered without their SI prefix";
    out.push_back(make(rules::kUnitsTimeScale, msg.str(), "", -1));
  }
  return out;
}

std::vector<Diagnostic> check_netlist_units(const spice::ParsedNetlist& nl) {
  std::vector<Diagnostic> out = check_timeline_units(extract_timeline(nl));
  for (const auto& dev : nl.circuit().devices()) {
    const auto* mtj = dynamic_cast<const spice::MTJElement*>(dev.get());
    if (mtj == nullptr) continue;
    check_mtj_params(mtj->model().params(), mtj->name(),
                     nl.device_line(mtj->name()), out);
  }
  return out;
}

std::vector<Diagnostic> check_paper_params(const models::PaperParams& pp) {
  std::vector<Diagnostic> out;

  const struct {
    const char* name;
    double value;
  } biases[] = {
      {"vdd", pp.vdd},
      {"vsr", pp.vsr},
      {"vctrl_store", pp.vctrl_store},
      {"vctrl_normal", pp.vctrl_normal},
      {"vctrl_sleep", pp.vctrl_sleep},
      {"vvdd_sleep", pp.vvdd_sleep},
      {"vvdd_retention_floor", pp.vvdd_retention_floor},
      {"vpg_supercutoff", pp.vpg_supercutoff},
  };
  for (const auto& b : biases) {
    if (b.value < 0.0 || b.value > kMaxBias) {
      std::ostringstream msg;
      msg << "PaperParams." << b.name << " = " << util::si_format(b.value, "V")
          << " is outside the [0, " << util::si_format(kMaxBias, "V", 1)
          << "] process range (value in mV entered as V, or vice versa?)";
      out.push_back(make(rules::kUnitsVoltageRange, msg.str(), b.name, -1));
    }
  }
  if (pp.vvdd_sleep > pp.vdd) {
    out.push_back(make(rules::kUnitsVoltageRange,
                       "PaperParams.vvdd_sleep = " +
                           util::si_format(pp.vvdd_sleep, "V") +
                           " exceeds vdd = " + util::si_format(pp.vdd, "V") +
                           ": a sleep rail above the supply is meaningless",
                       "vvdd_sleep", -1));
  }

  const struct {
    const char* name;
    double value;
  } times[] = {
      {"store_pulse", pp.store_pulse},
      {"clock_period", pp.clock_period()},
  };
  for (const auto& t : times) {
    if (t.value < 1e-12 || t.value > 1e-3) {
      std::ostringstream msg;
      msg << "PaperParams." << t.name << " = " << util::si_format(t.value, "s")
          << " is outside the ps..ms range plausible for this technology "
          << "(wrong SI prefix?)";
      out.push_back(make(rules::kUnitsTimeScale, msg.str(), t.name, -1));
    }
  }

  check_mtj_params(pp.mtj, "PaperParams.mtj", -1, out);

  // Close the store-energy algebra symbolically:
  //   E = (factor * Ic) * VDD * t_pulse  must come out in joules.
  const util::Quantity ic{pp.mtj.jc * pp.mtj.area(), util::dims::kAmpere};
  const util::Quantity factor{pp.store_current_factor, util::dims::kScalar};
  const util::Quantity vdd{pp.vdd, util::dims::kVolt};
  const util::Quantity pulse{pp.store_pulse, util::dims::kSecond};
  const util::Quantity energy = factor * ic * vdd * pulse;
  if (energy.dim != util::dims::kJoule) {
    out.push_back(make(rules::kUnitsDimension,
                       "store energy factor*Ic*VDD*t has dimension [" +
                           util::to_string(energy.dim) +
                           "], expected [J]: unit algebra does not close",
                       "store_energy", -1));
  }
  return out;
}

}  // namespace nvsram::lint::temporal
