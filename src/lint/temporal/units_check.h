// Dimensional / range analysis over parameters and stimulus values.
//
// These checks catch the classic unit slips of this literature before they
// silently skew a simulation: a critical current density entered in A/cm^2
// where the model wants A/m^2 (4 orders of magnitude of store current), a
// pulse width in the wrong SI prefix, a bias outside anything the 14 nm
// process survives.  Derived quantities (Ic, switching time, store energy)
// are recomputed with util::Quantity so the algebra is checked symbolically,
// not just numerically.  Findings surface as `units-*` lint rules.
#pragma once

#include <vector>

#include "lint/diagnostic.h"

namespace nvsram::spice {
class ParsedNetlist;
}  // namespace nvsram::spice
namespace nvsram::models {
struct PaperParams;
}  // namespace nvsram::models

namespace nvsram::lint::temporal {

struct Timeline;

// Stimulus-level checks on any timeline: driver levels within the process
// voltage range, schedule horizon on a plausible time scale.
std::vector<Diagnostic> check_timeline_units(const Timeline& timeline);

// Netlist pass: timeline units plus per-device parameter checks (MTJ
// critical current density and the quantities derived from it).
std::vector<Diagnostic> check_netlist_units(const spice::ParsedNetlist& nl);

// Parameter-bundle pass over Table I values, run before characterization.
std::vector<Diagnostic> check_paper_params(const models::PaperParams& pp);

}  // namespace nvsram::lint::temporal
