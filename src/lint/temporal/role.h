// Signal roles for the temporal protocol analyzer.
//
// Every independent source (netlist) or scripted driver track (testbench)
// is classified into the role it plays in the paper's power-gating
// protocol.  Roles come from three places, in priority order:
//   1. explicit `.role <source> <role>` netlist annotations,
//   2. testbench metadata (CellTestbench knows its tracks exactly),
//   3. name heuristics over the source and its driven node ("pg", "wl", ...).
//
// This header is deliberately free of spice/ includes so that both the
// parser (annotation cards) and the sram testbench (schedule export) can
// name roles without a dependency cycle.
#pragma once

#include <optional>
#include <string>

namespace nvsram::lint::temporal {

enum class SignalRole {
  kPower,        // VDD rail (or the rail that sags during OSR sleep)
  kPowerGate,    // header-switch gate; high = domain gated off (super cutoff)
  kWordline,     // WL access pulse
  kBitline,      // BL / BLB (driven or precharged)
  kPrecharge,    // precharge pFET gate; LOW = precharge active
  kWriteDriver,  // write-driver nFET gate
  kStoreEnable,  // SR line activating the PS-FinFET store branches
  kRestoreCtrl,  // CTRL line (store step 2 level / restore bias)
  kOther,        // anything the protocol checks ignore
};

// Stable lowercase identifier ("power-gate", "wordline", ...), used by the
// `.role` netlist card and in diagnostics.
const char* to_string(SignalRole role);

// Inverse of to_string(); nullopt for unknown identifiers.
std::optional<SignalRole> role_from_string(const std::string& id);

// Name heuristic: classifies from the driving source's name and the node it
// drives (e.g. "Vpg" / "pg" -> kPowerGate).  Both strings are matched
// case-insensitively; either may be empty.
SignalRole classify_role(const std::string& source_name,
                         const std::string& node_name);

}  // namespace nvsram::lint::temporal
