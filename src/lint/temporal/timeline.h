// Event-timeline model of a stimulus schedule, extracted statically.
//
// A Timeline is a piecewise-linear view of every independent driver in a
// simulation — built either from the parsed netlist's PWL/PULSE/DC sources
// or from a CellTestbench's scheduled tracks — plus the phase windows of the
// schedule when they are known.  The protocol checker (protocol.h) consumes
// this model; no transient solve is ever involved.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lint/temporal/role.h"

namespace nvsram::spice {
class ParsedNetlist;
}  // namespace nvsram::spice

namespace nvsram::lint::temporal {

// A half-open interval of simulated time.
struct Window {
  double t0 = 0.0;
  double t1 = 0.0;
  double duration() const { return t1 - t0; }
};

// One monotone level change: the signal moves linearly from v0 at t0 to v1
// at t1.  Transitions are time-ordered and non-overlapping; between them the
// signal holds the previous v1.
struct Transition {
  double t0 = 0.0;
  double t1 = 0.0;
  double v0 = 0.0;
  double v1 = 0.0;
};

class SignalTimeline {
 public:
  std::string name;                 // driving source ("Vpg") or track name
  SignalRole role = SignalRole::kOther;
  int line = -1;                    // netlist source line, -1 for testbench
  double initial = 0.0;             // level before the first transition
  std::vector<Transition> transitions;

  // Piecewise-linear level at time t.
  double level_at(double t) const;
  double final_level() const {
    return transitions.empty() ? initial : transitions.back().v1;
  }
  double max_level() const;
  double min_level() const;

  // Maximal windows over [0, t_stop] where the level is >= / < `threshold`.
  // Crossing times are interpolated inside transitions.
  std::vector<Window> windows_above(double threshold, double t_stop) const;
  std::vector<Window> windows_below(double threshold, double t_stop) const;
};

struct PhaseSpan {
  std::string name;
  double t0 = 0.0;
  double t1 = 0.0;
};

struct Timeline {
  double t_stop = 0.0;      // schedule horizon (0 => no transient scheduled)
  bool has_mtj = false;     // retention devices present (gates NV rules)
  bool has_fet = false;     // FinFETs present (gates process-range rules)
  std::string origin;       // "netlist" or "testbench:6t"/"testbench:nvsram"
  std::vector<SignalTimeline> signals;
  std::vector<PhaseSpan> phases;  // testbench schedules only

  // First signal carrying `role`, nullptr when absent.
  const SignalTimeline* find_role(SignalRole role) const;
  std::vector<const SignalTimeline*> with_role(SignalRole role) const;

  // Name of the phase covering time t ("" when none / unknown).
  std::string phase_at(double t) const;

  // Deterministic human-readable rendering (times in ns, 3 decimals) used by
  // the golden-timeline tests and `nvlint --bench` verbose output.
  std::string describe() const;
};

// Builds the timeline of a parsed netlist: one SignalTimeline per
// independent voltage source, classified via `.role` annotations first and
// name heuristics second.  t_stop comes from the .tran card (0 when the
// netlist only runs DC/AC analyses — protocol checks are skipped then).
Timeline extract_timeline(const spice::ParsedNetlist& netlist);

}  // namespace nvsram::lint::temporal
