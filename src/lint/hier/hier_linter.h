// Hierarchical summary-based lint engine.
//
// The flat linter (lint/linter.cpp) walks the fully flattened circuit, so an
// N×M array of one cell definition pays the per-device rule cost N·M times.
// This engine instead:
//
//   1. parses each `.subckt` definition once in isolation (a "mini" netlist
//      over its ports) and derives an interface summary: structural
//      connectivity quotients over the ports, per-port DC-stamp facts, FET
//      gate/channel port roles, MTJ/FET presence, and the definition-local
//      diagnostics that replicate verbatim into every instance
//      (hier/summary.h);
//   2. rebuilds the *reduced* top level — the scope-0 cards with their
//      original line numbers, X cards replaced by per-instance surrogate
//      wiring devices derived from the summaries — and runs the real
//      top-level checkers on it;
//   3. composes whole-netlist verdicts from (1) + (2) in
//      O(unique defs + instances·ports).
//
// Every step carries a certificate that the composition is exact; any
// failed certificate (a construct the summaries cannot represent, or a
// screen that cannot prove the quotient preserves the flat verdict) makes
// the engine return the flat `lint_netlist` result wholesale.  Hierarchical
// lint is therefore verdict-identical to flat lint by construction, and
// fast on the decks that matter: large arrays of certified-clean cells.
#pragma once

#include <string>

#include "lint/report.h"
#include "lint/rules.h"

namespace nvsram::spice {
class ParsedNetlist;
}

namespace nvsram::lint::hier {

// Implementation behind lint::lint_netlist_hier (lint/linter.h).
LintReport lint_hier(const spice::ParsedNetlist& netlist,
                     const LintOptions& options);

// Introspection for tests/benchmarks: whether the last lint_hier call on
// this thread used the composed fast path (true) or fell back to the flat
// engine (false).
bool last_run_used_fast_path();

// Why the last lint_hier call on this thread fell back ("" when the fast
// path ran, or when the netlist had no instances to compose).  Shown by
// `nvlint --hier` so a deck that silently loses the speedup is explainable.
const std::string& last_fallback_reason();

}  // namespace nvsram::lint::hier
