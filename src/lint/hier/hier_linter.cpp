#include "lint/hier/hier_linter.h"

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "linalg/sparse.h"
#include "lint/graph.h"
#include "lint/hier/summary.h"
#include "lint/lint_cache.h"
#include "lint/linter.h"
#include "lint/rules.h"
#include "spice/circuit.h"
#include "spice/elements.h"
#include "spice/fet_element.h"
#include "spice/mtj_element.h"
#include "spice/netlist_parser.h"
#include "spice/structural_analysis.h"

namespace nvsram::lint::hier {

namespace {

using spice::Circuit;
using spice::Device;
using spice::NodeId;
using spice::ParsedNetlist;

thread_local bool g_last_fast_path = false;
thread_local std::string g_last_fallback_reason;

// Stand-in for one .subckt instance in the reduced top level.  It has no
// terminals (instance-internal pins are composed separately from the
// definition summary), but it reproduces the definition's effect on the
// top-level analyses:
//   * dc_paths() chains the bound ports of each plain-DC class of the
//     definition (plus a ground edge for grounded classes), so the reduced
//     CircuitGraph partitions the top-level nodes exactly as the flat one;
//   * stamp_pattern() plants the port x port projection of the definition's
//     DC stamp pattern between the bound nodes — a subset of what the
//     flattened instance stamps there, which is exactly what the reduced
//     structural certificate needs.
class InstanceSurrogate : public Device {
 public:
  InstanceSurrogate(std::string name, std::vector<NodeId> bound,
                    std::shared_ptr<const DefSummary> def)
      : Device(std::move(name)), bound_(std::move(bound)),
        def_(std::move(def)) {}

  std::vector<spice::TerminalRef> terminals() const override { return {}; }

  std::vector<std::pair<NodeId, NodeId>> dc_paths() const override {
    std::vector<std::pair<NodeId, NodeId>> edges;
    for (const auto& comp : def_->dc_comps) {
      NodeId prev = spice::kGround;
      bool have_prev = false;
      for (const int p : comp.ports) {
        const NodeId n = bound_[static_cast<std::size_t>(p)];
        if (n == spice::kGround) continue;  // unused port, node absent
        if (have_prev) edges.emplace_back(prev, n);
        prev = n;
        have_prev = true;
      }
      if (comp.grounded && have_prev) {
        edges.emplace_back(prev, spice::kGround);
      }
    }
    return edges;
  }

  void stamp(spice::StampContext&) override {}

  void stamp_pattern(spice::PatternContext& ctx) const override {
    for (const auto& [pr, pc] : def_->port_pattern) {
      const NodeId r = bound_[static_cast<std::size_t>(pr)];
      const NodeId c = bound_[static_cast<std::size_t>(pc)];
      if (r == spice::kGround || c == spice::kGround) continue;
      ctx.mat_nn(r, c);
    }
  }

 private:
  std::vector<NodeId> bound_;  // port index -> reduced node (kGround: unused)
  std::shared_ptr<const DefSummary> def_;
};

struct InstanceCtx {
  const spice::SubcktInstanceInfo* info = nullptr;
  std::shared_ptr<const DefSummary> def;
  std::string path;  // instance_path form of info->name ('.' -> '/')
};

class Composer {
 public:
  Composer(const ParsedNetlist& netlist, const LintOptions& options)
      : nl_(netlist), options_(options) {}

  // Composes the full report, or nullopt when any certificate fails and the
  // caller must take the flat path (the reason lands in
  // last_fallback_reason()).
  std::optional<LintReport> run() {
    if (!load_summaries()) return std::nullopt;
    if (!build_reduced()) return std::nullopt;
    if (!certify_structure()) return std::nullopt;

    rgraph_.emplace(reduced_->circuit());
    compose_float_nodes();
    compose_dc_paths();
    compose_voltage_branches();
    compose_self_connected();
    replicate_local(rules::kSelfConnected);
    compose_values();
    replicate_local(rules::kNonphysicalValue);
    compose_sram_topology();

    // Everything else runs over the flat netlist through the selective flat
    // entry point, so those verdicts are flat-identical by construction.
    LintPasses passes;
    passes.structural = false;
    passes.preset_floating = floating_;
    LintReport rest = lint_netlist_passes(nl_, options_, passes);
    for (const auto& d : rest.diagnostics()) report_.add(d);
    return std::move(report_);
  }

 private:
  bool bail(std::string why) {
    g_last_fallback_reason = std::move(why);
    return false;
  }

  // ---- summaries + per-instance screens ----------------------------------
  bool load_summaries() {
    std::unordered_map<std::string, std::shared_ptr<const DefSummary>> by_def;
    const Circuit& flat = nl_.circuit();
    for (const auto& inst : nl_.instance_infos()) {
      // Nested instances appear with depth > 0; the composition is built
      // for one level of hierarchy.
      if (inst.depth != 0) {
        return bail("instance '" + inst.name + "' is nested (depth > 0)");
      }
      auto it = by_def.find(inst.def);
      if (it == by_def.end()) {
        const spice::SubcktInfo* info = nullptr;
        for (const auto& si : nl_.subckt_infos()) {
          if (si.name == inst.def) {
            info = &si;
            break;
          }
        }
        if (info == nullptr) {
          return bail("no recorded definition for '" + inst.def + "'");
        }
        auto summary = lint_summary_cache_lookup(info->content_hash);
        if (summary == nullptr) {
          summary = summarize_subckt(*info);
          lint_summary_cache_store(info->content_hash, summary);
        }
        it = by_def.emplace(inst.def, std::move(summary)).first;
      }
      const auto& def = it->second;
      if (!def->ok) {
        return bail("definition '" + inst.def + "': " + def->fail_reason);
      }
      if (inst.bindings.size() != static_cast<std::size_t>(def->port_count)) {
        return bail("instance '" + inst.name + "' binding count mismatch");
      }
      // The quotients assume the bindings are pairwise distinct non-ground
      // nodes; a repeated or grounded binding merges definition nodes in a
      // way the summary cannot express.
      std::set<std::string> seen;
      for (const auto& b : inst.bindings) {
        if (!seen.insert(b).second) {
          return bail("instance '" + inst.name + "' binds node '" + b +
                      "' to more than one port");
        }
        if (flat.has_node(b) && flat.find_node(b) == spice::kGround) {
          return bail("instance '" + inst.name + "' binds ground to a port");
        }
      }
      // A binding that names a node inside another instance would alias the
      // reduced top level with replicated internals.
      for (const auto& b : inst.bindings) {
        if (!nl_.instance_path_of(b).empty()) {
          return bail("instance '" + inst.name + "' binds instance-internal "
                      "node '" + b + "'");
        }
      }
      InstanceCtx ctx;
      ctx.info = &inst;
      ctx.def = def;
      ctx.path = inst.name;
      std::replace(ctx.path.begin(), ctx.path.end(), '.', '/');
      instances_.push_back(std::move(ctx));
    }
    return true;
  }

  // ---- reduced top level: scope-0 cards + per-instance surrogates --------
  bool build_reduced() {
    int max_line = 1;
    for (const auto& [card, line] : nl_.top_card_lines()) {
      (void)card;
      max_line = std::max(max_line, line);
    }
    std::vector<std::string> lines(static_cast<std::size_t>(max_line) + 1,
                                   "*");
    if (!nl_.title().empty()) lines[1] = nl_.title();
    for (const auto& [card, line] : nl_.top_card_lines()) {
      lines[static_cast<std::size_t>(line)] = card;
    }
    std::ostringstream text;
    for (std::size_t i = 1; i < lines.size(); ++i) text << lines[i] << '\n';
    try {
      spice::NetlistParser parser;
      reduced_ = parser.parse(text.str());
    } catch (const std::exception& e) {
      // e.g. every device lives inside instances
      return bail(std::string("reduced top level does not parse: ") +
                  e.what());
    }

    Circuit& rckt = reduced_->circuit();
    // Top-level names that collide with flattened instance internals would
    // make the reduced view lose pins; bail to the flat path.
    for (NodeId n = 1; n < rckt.node_count(); ++n) {
      if (!nl_.instance_path_of(rckt.node_name(n)).empty()) {
        return bail("top-level node '" + rckt.node_name(n) +
                    "' aliases an instance-internal name");
      }
    }
    const Circuit& flat = nl_.circuit();
    try {
      std::size_t serial = 0;
      for (auto& inst : instances_) {
        std::vector<NodeId> bound(
            static_cast<std::size_t>(inst.def->port_count), spice::kGround);
        for (std::size_t k = 0; k < inst.info->bindings.size(); ++k) {
          const std::string& b = inst.info->bindings[k];
          // Only nodes that exist in the flat circuit are registered: a
          // binding nobody pins does not exist flat, and creating it here
          // would invent an unknown the flat analysis never saw.
          if (flat.has_node(b)) bound[k] = rckt.node(b);
        }
        rckt.add<InstanceSurrogate>("xhier~" + std::to_string(serial++),
                                    std::move(bound), inst.def);
      }
    } catch (const std::exception& e) {
      // pathological name collision with a surrogate
      return bail(std::string("surrogate construction failed: ") + e.what());
    }
    return true;
  }

  // ---- structural certificate --------------------------------------------
  // The summaries certify every instance interior (internal diagonals,
  // grounded port-free blocks); a solvable reduced top level with the
  // surrogate projections then proves the flat pattern has a perfect
  // matching and no dangling branch rows.  The ground-reference
  // (floating-block) check cannot run on the reduced pattern directly:
  // definition interiors both merge pattern classes (a gate rail read by
  // every cell couples only through in-definition gate-column entries) and
  // ground them, invisibly to the port x port projection.
  // certify_grounding() composes that proof from the per-definition port
  // classes instead.
  bool certify_structure() {
    const spice::StructuralReport rep =
        spice::analyze_structure(reduced_->circuit(), /*dc=*/true);
    if (rep.structurally_singular || !rep.dangling_branches.empty()) {
      std::ostringstream why;
      why << "reduced top level is not structurally solvable:";
      if (!rep.dangling_branches.empty()) {
        why << " dangling('" << rep.dangling_branches.front().device << "')";
      }
      for (const auto& d : rep.undetermined_unknowns) {
        why << " undetermined(" << d.unknown << ")";
      }
      for (const auto& d : rep.unsolvable_equations) {
        why << " unsolvable(" << d.unknown << ")";
      }
      return bail(why.str());
    }
    return certify_grounding();
  }

  // Composed ground-reference proof.  The flat bipartite pattern classes,
  // restricted to top-visible vertices, equal the classes generated by the
  // reduced triplets plus the per-instance port-class unions; the flat
  // grounding marks are exactly the top devices with a ground terminal
  // (attributed, like analyze_structure, to their first stamped row) plus
  // the grounded definition classes.  Definition classes that never touch a
  // port were already certified grounded by the summary itself, so flat
  // lint emits zero floating-block findings iff every touched composed
  // vertex lands in a grounded class.
  bool certify_grounding() {
    const Circuit& rckt = reduced_->circuit();
    spice::MnaLayout layout(rckt.node_count());
    const auto& devices = rckt.devices();
    for (const auto& dev : devices) dev->reserve(layout);
    const std::size_t n = layout.unknown_count();
    if (n == 0) return true;

    linalg::SparseBuilder builder(n);
    std::vector<std::pair<std::size_t, std::size_t>> stamped(devices.size());
    for (std::size_t i = 0; i < devices.size(); ++i) {
      spice::PatternContext ctx(layout, builder, /*dc=*/true);
      stamped[i].first = builder.triplets().size();
      devices[i]->stamp_pattern(ctx);
      stamped[i].second = builder.triplets().size();
    }

    // Union-find over the 2n bipartite vertices: v in [0, n) is equation
    // row v, v in [n, 2n) is unknown column v - n.
    std::vector<std::size_t> parent(2 * n);
    for (std::size_t v = 0; v < parent.size(); ++v) parent[v] = v;
    auto find = [&parent](std::size_t v) {
      while (parent[v] != v) {
        parent[v] = parent[parent[v]];
        v = parent[v];
      }
      return v;
    };
    auto unite = [&](std::size_t a, std::size_t b) { parent[find(a)] = find(b); };
    std::vector<char> touched(2 * n, 0);
    for (const auto& trip : builder.triplets()) {
      touched[trip.row] = 1;
      touched[n + trip.col] = 1;
      unite(trip.row, n + trip.col);
    }

    // Ground marks whose roots resolve after all unions are in.
    std::vector<std::size_t> grounded_at;
    for (std::size_t i = 0; i < devices.size(); ++i) {
      if (stamped[i].first == stamped[i].second) continue;
      for (const spice::TerminalRef& t : devices[i]->terminals()) {
        if (t.node == spice::kGround) {
          grounded_at.push_back(builder.triplets()[stamped[i].first].row);
          break;
        }
      }
    }

    for (const auto& inst : instances_) {
      for (const auto& cls : inst.def->port_classes) {
        std::size_t first = 0;
        bool have_first = false;
        for (const auto& [side, p] : cls.members) {
          const std::string& b =
              inst.info->bindings[static_cast<std::size_t>(p)];
          if (!rckt.has_node(b)) {
            return bail("instance '" + inst.info->name + "' port node '" + b +
                        "' missing from the reduced top level");
          }
          const std::size_t u = layout.node_index(rckt.find_node(b));
          const std::size_t v = side == 0 ? u : n + u;
          touched[v] = 1;
          if (have_first) {
            unite(first, v);
          } else {
            first = v;
            have_first = true;
          }
        }
        if (have_first && cls.grounded) grounded_at.push_back(first);
      }
    }

    std::unordered_set<std::size_t> grounded_roots;
    for (const std::size_t v : grounded_at) grounded_roots.insert(find(v));
    for (std::size_t v = 0; v < 2 * n; ++v) {
      if (!touched[v] || grounded_roots.count(find(v)) > 0) continue;
      const std::size_t u = v < n ? v : v - n;
      std::ostringstream why;
      why << "composed ground-reference proof failed at "
          << (v < n ? "equation " : "unknown ");
      if (u < rckt.node_count() - 1) {
        why << "V(" << rckt.node_name(static_cast<NodeId>(u + 1)) << ")";
      } else {
        why << "branch " << u - (rckt.node_count() - 1);
      }
      return bail(why.str());
    }
    return true;
  }

  // ---- shared emit plumbing (mirrors the flat Linter) --------------------
  void emit(const char* rule, std::string message, std::string device,
            std::string node, int line) {
    if (!options_.enabled(rule)) return;
    Diagnostic d;
    d.rule = rule;
    d.severity = default_severity(rule);
    if (d.severity < options_.min_severity) return;
    d.message = std::move(message);
    d.device = std::move(device);
    d.node = std::move(node);
    d.line = line;
    if (d.instance_path.empty()) {
      const std::string& name = d.device.empty() ? d.node : d.device;
      if (!name.empty()) d.instance_path = nl_.instance_path_of(name);
    }
    report_.add(std::move(d));
  }

  int reduced_device_line(const std::string& name) const {
    std::string probe = name;
    for (;;) {
      const int line = reduced_->device_line(probe);
      if (line >= 0) return line;
      const auto dot = probe.rfind('.');
      if (dot == std::string::npos) return -1;
      probe.resize(dot);
    }
  }

  // Rewrites a summary-local name or message for one instance: the probe
  // prefix ("X0.") becomes "<instance>." and every "__p<k>" placeholder
  // becomes the bound node name (descending k, so "__p12" wins over "__p1").
  std::string rewrite(std::string text, const InstanceCtx& inst) const {
    const std::string& from = inst.def->local_prefix;
    const std::string to = inst.info->name + ".";
    for (std::size_t pos = 0; (pos = text.find(from, pos)) != std::string::npos;
         pos += to.size()) {
      text.replace(pos, from.size(), to);
    }
    for (int k = inst.def->port_count - 1; k >= 0; --k) {
      const std::string ph = port_placeholder(k);
      const std::string& binding =
          inst.info->bindings[static_cast<std::size_t>(k)];
      for (std::size_t pos = 0;
           (pos = text.find(ph, pos)) != std::string::npos;
           pos += binding.size()) {
        text.replace(pos, ph.size(), binding);
      }
    }
    return text;
  }

  // Replicates the definition-local diagnostics carrying `rule` into every
  // instance (float-node replication happens inside compose_float_nodes so
  // the floating-set bookkeeping stays in one place).
  void replicate_local(const char* rule) {
    for (const auto& inst : instances_) {
      for (const auto& d : inst.def->local_diags) {
        if (d.rule != rule) continue;
        if (!options_.enabled(d.rule)) continue;
        if (d.severity < options_.min_severity) continue;
        Diagnostic copy = d;
        copy.message = rewrite(copy.message, inst);
        copy.device = rewrite(copy.device, inst);
        copy.node = rewrite(copy.node, inst);
        copy.instance_path = inst.path;
        report_.add(std::move(copy));
      }
    }
  }

  // ---- float-node ---------------------------------------------------------
  void compose_float_nodes() {
    struct PinDesc {
      std::string device;
      std::string role;
    };
    // Definition-side pin contributions per bound top-level node.
    std::unordered_map<std::string, int> extra;
    std::unordered_map<std::string, PinDesc> only_pin;
    for (const auto& inst : instances_) {
      for (int k = 0; k < inst.def->port_count; ++k) {
        const auto& pf = inst.def->ports[static_cast<std::size_t>(k)];
        if (pf.pins == 0) continue;
        const std::string& b =
            inst.info->bindings[static_cast<std::size_t>(k)];
        extra[b] += pf.pins;
        if (pf.pins == 1) {
          only_pin[b] = {rewrite(pf.single_pin_device, inst),
                         pf.single_pin_role};
        }
      }
    }
    const Circuit& rckt = reduced_->circuit();
    for (NodeId n = 1; n < rckt.node_count(); ++n) {
      const std::string& name = rckt.node_name(n);
      const auto& pins = rgraph_->pins(n);
      const auto it = extra.find(name);
      const int total =
          static_cast<int>(pins.size()) + (it == extra.end() ? 0 : it->second);
      if (total > 1) continue;
      floating_.insert(name);
      if (total == 0) {
        emit(rules::kFloatNode,
             "node '" + name + "' is not attached to any device pin", "",
             name, nl_.node_line(name));
      } else {
        PinDesc desc = pins.size() == 1
                           ? PinDesc{pins[0].device->name(), pins[0].role}
                           : only_pin[name];
        emit(rules::kFloatNode,
             "node '" + name + "' is attached to a single device pin ('" +
                 desc.device + "' " + desc.role + ")",
             "", name, nl_.node_line(name));
      }
    }
    // Definition-internal 0/1-pin nodes replicate per instance.  The
    // floating-set insert happens before the option filter, matching the
    // flat pass (which tracks floating nodes even for disabled rules).
    for (const auto& inst : instances_) {
      for (const auto& d : inst.def->local_diags) {
        if (d.rule != rules::kFloatNode) continue;
        Diagnostic copy = d;
        copy.message = rewrite(copy.message, inst);
        copy.node = rewrite(copy.node, inst);
        floating_.insert(copy.node);
        if (!options_.enabled(copy.rule)) continue;
        if (copy.severity < options_.min_severity) continue;
        copy.instance_path = inst.path;
        report_.add(std::move(copy));
      }
    }
  }

  // ---- no-dc-path ---------------------------------------------------------
  void compose_dc_paths() {
    const Circuit& rckt = reduced_->circuit();
    const Circuit& flat = nl_.circuit();
    // flat NodeId + name per member, so ordering, the representative node,
    // and the member list match the flat diagnostic exactly.
    using Member = std::pair<NodeId, std::string>;
    std::map<std::size_t, std::vector<Member>> islands;
    auto flat_member = [&](const std::string& name) {
      return Member{flat.find_node(name), name};
    };
    for (NodeId n = 1; n < rckt.node_count(); ++n) {
      if (!rgraph_->dc_reaches_ground(n)) {
        islands[rgraph_->dc_component(n)].push_back(
            flat_member(rckt.node_name(n)));
      }
    }
    std::vector<std::vector<Member>> instance_islands;
    for (const auto& inst : instances_) {
      for (const auto& comp : inst.def->dc_comps) {
        if (comp.internals.empty() || comp.grounded) continue;
        std::vector<Member>* bucket = nullptr;
        if (!comp.ports.empty()) {
          // Attached to the top level through its bound ports: grounded iff
          // the reduced component is (ports of one class always land in one
          // reduced component, chained by the surrogate).
          const std::string& b = inst.info->bindings[static_cast<std::size_t>(
              comp.ports.front())];
          const NodeId rn = rckt.find_node(b);
          if (rgraph_->dc_reaches_ground(rn)) continue;
          bucket = &islands[rgraph_->dc_component(rn)];
        } else {
          instance_islands.emplace_back();
          bucket = &instance_islands.back();
        }
        for (const int i : comp.internals) {
          bucket->push_back(flat_member(
              inst.info->name + "." +
              inst.def->internals[static_cast<std::size_t>(i)].name));
        }
      }
    }

    auto emit_island = [&](std::vector<Member> nodes) {
      std::sort(nodes.begin(), nodes.end());
      for (const auto& [id, name] : nodes) {
        (void)id;
        floating_.insert(name);
      }
      std::ostringstream names;
      const std::size_t shown = std::min<std::size_t>(nodes.size(), 5);
      for (std::size_t i = 0; i < shown; ++i) {
        if (i) names << ", ";
        names << '\'' << nodes[i].second << '\'';
      }
      if (nodes.size() > shown) {
        names << " (+" << nodes.size() - shown << " more)";
      }
      int line = -1;
      for (const auto& [id, name] : nodes) {
        (void)id;
        const int l = nl_.node_line(name);
        if (l >= 0 && (line < 0 || l < line)) line = l;
      }
      emit(rules::kNoDcPath,
           "node" + std::string(nodes.size() > 1 ? "s " : " ") + names.str() +
               " ha" + (nodes.size() > 1 ? "ve" : "s") +
               " no DC conduction path to ground (capacitors and current "
               "sources are open at DC); the MNA operating point is singular",
           "", nodes.front().second, line);
    };
    for (auto& [root, nodes] : islands) {
      (void)root;
      emit_island(std::move(nodes));
    }
    for (auto& nodes : instance_islands) emit_island(std::move(nodes));
  }

  // ---- vsource-shorted / vsource-loop ------------------------------------
  // Definitions cannot contain voltage-defined branches (the summary screens
  // card kinds), so both rules reduce to the top level verbatim; the loop
  // closers come out identical because the reduced device order preserves
  // the top-card order the flat union-find saw.
  void compose_voltage_branches() {
    const Circuit& rckt = reduced_->circuit();
    for (const auto& dev : rckt.devices()) {
      const auto vb = dev->voltage_branch();
      if (vb && vb->first == vb->second) {
        emit(rules::kVsourceShorted,
             "voltage-defined branch '" + dev->name() +
                 "' has both terminals on node '" +
                 rckt.node_name(vb->first) +
                 "'; its branch equation is unsatisfiable",
             dev->name(), "", reduced_device_line(dev->name()));
      }
    }
    for (const Device* dev : rgraph_->voltage_loop_closers()) {
      emit(rules::kVsourceLoop,
           "voltage-defined branch '" + dev->name() +
               "' closes a loop of voltage sources (parallel or "
               "cyclic V/E devices); the MNA matrix is singular",
           dev->name(), "", reduced_device_line(dev->name()));
    }
  }

  // ---- self-connected (top level; instances replicate) -------------------
  void compose_self_connected() {
    const Circuit& rckt = reduced_->circuit();
    for (const auto& dev : rckt.devices()) {
      if (dev->voltage_branch()) continue;
      if (const auto* fet =
              dynamic_cast<const spice::FinFETElement*>(dev.get())) {
        if (fet->drain() == fet->source()) {
          emit(rules::kSelfConnected,
               "FET '" + dev->name() +
                   "' has drain and source on the same node; the channel "
                   "can never conduct",
               dev->name(), "", reduced_device_line(dev->name()));
        }
        continue;
      }
      const auto terms = dev->terminals();  // surrogates: empty, skipped
      if (terms.size() == 2 && terms[0].node == terms[1].node) {
        emit(rules::kSelfConnected,
             "device '" + dev->name() + "' has both terminals on node '" +
                 rckt.node_name(terms[0].node) +
                 "'; its stamps cancel and it carries no signal",
             dev->name(), "", reduced_device_line(dev->name()));
      }
    }
  }

  // ---- nonphysical-value (top level; instances replicate) ----------------
  void compose_values() {
    const Circuit& rckt = reduced_->circuit();
    auto check_positive = [&](const Device& dev, const char* what,
                              double value) {
      if (value > 0.0) return;
      std::ostringstream msg;
      msg << "device '" << dev.name() << "' has non-physical " << what << " "
          << value << " (must be > 0)";
      emit(rules::kNonphysicalValue, msg.str(), dev.name(), "",
           reduced_device_line(dev.name()));
    };
    for (const auto& dev : rckt.devices()) {
      if (const auto* r = dynamic_cast<const spice::Resistor*>(dev.get())) {
        check_positive(*dev, "resistance", r->resistance());
      } else if (const auto* c =
                     dynamic_cast<const spice::Capacitor*>(dev.get())) {
        check_positive(*dev, "capacitance", c->capacitance());
      } else if (const auto* l =
                     dynamic_cast<const spice::Inductor*>(dev.get())) {
        check_positive(*dev, "inductance", l->inductance());
      } else if (const auto* fet = dynamic_cast<const spice::FinFETElement*>(
                     dev.get())) {
        const auto& p = fet->model().params();
        check_positive(*dev, "fin count", static_cast<double>(p.fin_count));
        check_positive(*dev, "channel length", p.channel_length);
      } else if (const auto* mtj =
                     dynamic_cast<const spice::MTJElement*>(dev.get())) {
        const auto& p = mtj->model().params();
        check_positive(*dev, "tau0", p.tau0);
        check_positive(*dev, "diameter", p.diameter);
      } else if (const auto* diode =
                     dynamic_cast<const spice::Diode*>(dev.get())) {
        check_positive(*dev, "saturation current",
                       diode->saturation_current());
      }
    }
  }

  // ---- sram-cross-coupling / mtj-orientation -----------------------------
  void compose_sram_topology() {
    const Circuit& rckt = reduced_->circuit();
    std::vector<const spice::FinFETElement*> top_fets;
    std::vector<const spice::MTJElement*> top_mtjs;
    for (const auto& dev : rckt.devices()) {
      if (const auto* f =
              dynamic_cast<const spice::FinFETElement*>(dev.get())) {
        top_fets.push_back(f);
      } else if (const auto* m =
                     dynamic_cast<const spice::MTJElement*>(dev.get())) {
        top_mtjs.push_back(m);
      }
    }
    std::size_t fets = top_fets.size();
    std::size_t mtjs = top_mtjs.size();
    for (const auto& inst : instances_) {
      fets += static_cast<std::size_t>(inst.def->fet_count);
      mtjs += static_cast<std::size_t>(inst.def->mtj_count);
    }

    // Global FET-channel node set, by top-level name (instance internals
    // are tracked by the per-definition channel flag instead — nothing
    // outside the instance can reach them).
    std::unordered_set<std::string> channel;
    bool gnd_channel = false;
    for (const auto* f : top_fets) {
      for (const NodeId ch : {f->drain(), f->source()}) {
        if (ch == spice::kGround) {
          gnd_channel = true;
        } else {
          channel.insert(rckt.node_name(ch));
        }
      }
    }
    for (const auto& inst : instances_) {
      gnd_channel = gnd_channel || inst.def->gnd_channel;
      for (const int p : inst.def->channel_ports) {
        channel.insert(inst.info->bindings[static_cast<std::size_t>(p)]);
      }
    }

    auto emit_orientation = [&](const std::string& device, int line) {
      emit(rules::kMtjOrientation,
           "MTJ '" + device +
               "' has its pinned layer on the FET store branch and its "
               "free layer elsewhere; the paper's topology puts the free "
               "layer on the storage-node side (store polarity inverted)",
           device, "", line);
    };
    for (const auto* m : top_mtjs) {
      auto is_channel = [&](NodeId n) {
        return n == spice::kGround ? gnd_channel
                                   : channel.count(rckt.node_name(n)) > 0;
      };
      if (is_channel(m->pinned_node()) && !is_channel(m->free_node())) {
        emit_orientation(m->name(), reduced_device_line(m->name()));
      }
    }
    for (const auto& inst : instances_) {
      auto is_channel = [&](const MtjTerminal& t) {
        if (t.ground) return gnd_channel;
        if (t.port >= 0) {
          return channel.count(
                     inst.info->bindings[static_cast<std::size_t>(t.port)]) >
                 0;
        }
        return t.internal_channel;
      };
      for (const auto& m : inst.def->mtjs) {
        if (is_channel(m.pinned) && !is_channel(m.free)) {
          emit_orientation(inst.info->name + "." + m.local_name, m.line);
        }
      }
    }

    if (mtjs >= 2 && fets >= 6) {
      bool coupled = false;
      for (const auto& inst : instances_) {
        coupled = coupled || inst.def->local_cross_pair;
      }
      if (!coupled) {
        // Cross-instance (or top-level) pairs: each FET whose gate and
        // drain are both top-visible contributes a (gate, drain) name
        // pair; a cross-coupled pair is (a, b) and (b, a) with a != b.
        std::set<std::pair<std::string, std::string>> half;
        for (const auto* f : top_fets) {
          half.emplace(rckt.node_name(f->gate()), rckt.node_name(f->drain()));
        }
        for (const auto& inst : instances_) {
          for (const auto& [g, d] : inst.def->port_half_pairs) {
            half.emplace(inst.info->bindings[static_cast<std::size_t>(g)],
                         inst.info->bindings[static_cast<std::size_t>(d)]);
          }
        }
        for (const auto& [a, b] : half) {
          if (a != b && half.count({b, a})) {
            coupled = true;
            break;
          }
        }
      }
      if (!coupled) {
        emit(rules::kSramCrossCoupling,
             "circuit carries " + std::to_string(mtjs) +
                 " MTJ retention devices and " + std::to_string(fets) +
                 " FETs but no cross-coupled inverter pair; the 6T storage "
                 "core appears mis-wired",
             "", "", -1);
      }
    }
  }

  const ParsedNetlist& nl_;
  const LintOptions& options_;
  std::vector<InstanceCtx> instances_;
  std::unique_ptr<ParsedNetlist> reduced_;
  std::optional<CircuitGraph> rgraph_;
  LintReport report_;
  // Names the composed structural passes found floating, fed to the power
  // pass for dedupe exactly like the flat Linter's floating_nodes_.
  std::unordered_set<std::string> floating_;
};

}  // namespace

bool last_run_used_fast_path() { return g_last_fast_path; }

const std::string& last_fallback_reason() { return g_last_fallback_reason; }

LintReport lint_hier(const ParsedNetlist& netlist, const LintOptions& options) {
  g_last_fast_path = false;
  g_last_fallback_reason.clear();
  if (netlist.instance_infos().empty()) {
    // Nothing to compose; the flat path is already O(top-level cards), so
    // this is trivially the fast path, not a certificate failure.
    g_last_fast_path = true;
    return lint_netlist(netlist, options);
  }
  std::optional<LintReport> composed = Composer(netlist, options).run();
  if (!composed) return lint_netlist(netlist, options);
  g_last_fast_path = true;
  return std::move(*composed);
}

}  // namespace nvsram::lint::hier

namespace nvsram::lint {

LintReport lint_netlist_hier(const spice::ParsedNetlist& netlist,
                             const LintOptions& options) {
  return hier::lint_hier(netlist, options);
}

}  // namespace nvsram::lint
