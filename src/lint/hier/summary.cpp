#include "lint/hier/summary.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <memory>
#include <numeric>
#include <optional>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include "lint/graph.h"
#include "lint/rules.h"
#include "linalg/sparse.h"
#include "spice/circuit.h"
#include "spice/device.h"
#include "spice/elements.h"
#include "spice/fet_element.h"
#include "spice/mtj_element.h"
#include "spice/netlist_parser.h"

namespace nvsram::lint::hier {

namespace {

using spice::Circuit;
using spice::Device;
using spice::NodeId;

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

// Card kinds a definition body may contain.  Everything else — sources and
// inductors (branch unknowns), controlled sources, nested instances, dot
// cards — makes the definition unrepresentable and forces the flat
// fallback.  R/C/D/M(FinFET)/Y(MTJ) cover every cell the paper's decks
// build out of.
bool supported_card(char head) {
  switch (head) {
    case 'r':
    case 'c':
    case 'd':
    case 'm':
    case 'y':
      return true;
    default:
      return false;
  }
}

std::size_t uf_find(std::vector<std::size_t>& parent, std::size_t i) {
  while (parent[i] != i) {
    parent[i] = parent[parent[i]];
    i = parent[i];
  }
  return i;
}

void uf_unite(std::vector<std::size_t>& parent, std::size_t a, std::size_t b) {
  parent[uf_find(parent, a)] = uf_find(parent, b);
}

// Mirrors Linter::device_line: companions like "M1.cgs" fall back to their
// owner's card line by stripping trailing dot segments.
int device_line_of(const spice::ParsedNetlist& nl, const std::string& name) {
  std::string probe = name;
  for (;;) {
    const int line = nl.device_line(probe);
    if (line >= 0) return line;
    const auto dot = probe.rfind('.');
    if (dot == std::string::npos) return -1;
    probe.resize(dot);
  }
}

class SummaryBuilder {
 public:
  explicit SummaryBuilder(const spice::SubcktInfo& info) : info_(info) {}

  std::shared_ptr<const DefSummary> build() {
    s_ = std::make_shared<DefSummary>();
    s_->content_hash = info_.content_hash;
    s_->def_name = info_.name;
    s_->port_count = static_cast<int>(info_.ports.size());

    if (!screen_body()) return s_;
    if (!parse_mini()) return s_;
    classify_nodes();
    collect_pins();
    collect_dc_components();
    if (!collect_pattern()) return s_;
    collect_devices();
    collect_local_diags();
    s_->ok = true;
    return s_;
  }

 private:
  std::shared_ptr<DefSummary> fail(std::string why) {
    s_->ok = false;
    s_->fail_reason = std::move(why);
    return s_;
  }

  // ---- screens over the raw body -----------------------------------------
  bool screen_body() {
    for (const auto& [line, line_no] : info_.body) {
      (void)line_no;
      std::size_t i = line.find_first_not_of(" \t");
      if (i == std::string::npos) continue;
      const char head =
          static_cast<char>(std::tolower(static_cast<unsigned char>(line[i])));
      if (!supported_card(head)) {
        fail(std::string("unsupported card kind '") + line[i] +
             "' in definition body");
        return false;
      }
      // The instance prefix and port placeholders of the probe netlist must
      // not collide with names the body spells out, or the composer's
      // per-instance rewrite would corrupt them.
      const std::string low = to_lower(line);
      if (low.find("__p") != std::string::npos ||
          low.find("x0.") != std::string::npos) {
        fail("definition body uses a reserved probe name ('__p*' or 'x0.*')");
        return false;
      }
    }
    return true;
  }

  // ---- probe netlist: the definition instantiated once in isolation ------
  bool parse_mini() {
    int max_line = info_.def_line;
    for (const auto& [line, line_no] : info_.body) {
      (void)line;
      max_line = std::max(max_line, line_no);
    }
    // Original line numbers are preserved so recorded device/node lines
    // match the flat parse of the same definition exactly.
    std::vector<std::string> lines(static_cast<std::size_t>(max_line) + 1, "*");
    std::ostringstream header;
    header << ".subckt " << info_.name;
    for (const auto& p : info_.ports) header << ' ' << p;
    lines[static_cast<std::size_t>(info_.def_line)] = header.str();
    for (const auto& [line, line_no] : info_.body) {
      lines[static_cast<std::size_t>(line_no)] = line;
    }
    std::ostringstream text;
    for (std::size_t i = 1; i < lines.size(); ++i) text << lines[i] << '\n';
    text << ".ends\n";
    text << "X0";
    for (int k = 0; k < s_->port_count; ++k) {
      text << ' ' << port_placeholder(k);
    }
    text << ' ' << info_.name << '\n';

    try {
      spice::NetlistParser parser;
      mini_ = parser.parse(text.str());
    } catch (const std::exception& e) {
      fail(std::string("definition does not parse in isolation: ") + e.what());
      return false;
    }
    const auto& instances = mini_->instance_infos();
    if (instances.size() != 1) {
      fail("probe netlist recorded an unexpected instance count");
      return false;
    }
    s_->local_prefix = instances[0].name + ".";
    return true;
  }

  // ---- node classification: port placeholder vs definition-internal ------
  void classify_nodes() {
    const Circuit& ckt = mini_->circuit();
    port_node_.assign(static_cast<std::size_t>(s_->port_count),
                      spice::kGround);
    node_port_.assign(ckt.node_count(), -1);
    node_internal_.assign(ckt.node_count(), -1);
    for (int k = 0; k < s_->port_count; ++k) {
      const std::string ph = port_placeholder(k);
      if (!ckt.has_node(ph)) continue;  // port unused inside the definition
      const NodeId id = ckt.find_node(ph);
      port_node_[static_cast<std::size_t>(k)] = id;
      node_port_[id] = k;
    }
    for (NodeId n = 1; n < ckt.node_count(); ++n) {
      if (node_port_[n] >= 0) continue;
      const std::string& full = ckt.node_name(n);
      InternalNode in;
      in.name = full.size() > s_->local_prefix.size() &&
                        full.compare(0, s_->local_prefix.size(),
                                     s_->local_prefix) == 0
                    ? full.substr(s_->local_prefix.size())
                    : full;
      in.line = mini_->node_line(full);
      node_internal_[n] = static_cast<int>(s_->internals.size());
      s_->internals.push_back(std::move(in));
    }
    s_->ports.resize(static_cast<std::size_t>(s_->port_count));
    for (int k = 0; k < s_->port_count; ++k) {
      s_->ports[static_cast<std::size_t>(k)].name =
          info_.ports[static_cast<std::size_t>(k)];
    }
  }

  // ---- per-port pin counts (composed float-node) --------------------------
  void collect_pins() {
    graph_.emplace(mini_->circuit());
    for (int k = 0; k < s_->port_count; ++k) {
      const NodeId id = port_node_[static_cast<std::size_t>(k)];
      if (id == spice::kGround) continue;  // unused: zero pins
      const auto& pins = graph_->pins(id);
      auto& pf = s_->ports[static_cast<std::size_t>(k)];
      pf.pins = static_cast<int>(pins.size());
      if (pins.size() == 1) {
        pf.single_pin_device = pins[0].device->name();
        pf.single_pin_role = pins[0].role;
      }
    }
  }

  // ---- plain-DC quotient (composed no-dc-path + surrogate wiring) --------
  void collect_dc_components() {
    const Circuit& ckt = mini_->circuit();
    std::vector<std::size_t> parent(ckt.node_count());
    std::iota(parent.begin(), parent.end(), std::size_t{0});
    for (const auto& dev : ckt.devices()) {
      for (const auto& [a, b] : dev->dc_paths()) uf_unite(parent, a, b);
    }
    const std::size_t gnd_root = uf_find(parent, spice::kGround);
    std::map<std::size_t, std::size_t> comp_of_root;  // root -> dc_comps index
    for (NodeId n = 1; n < ckt.node_count(); ++n) {
      const std::size_t root = uf_find(parent, n);
      auto [it, fresh] = comp_of_root.emplace(root, s_->dc_comps.size());
      if (fresh) {
        DcComponent c;
        c.grounded = root == gnd_root;
        s_->dc_comps.push_back(std::move(c));
      }
      DcComponent& c = s_->dc_comps[it->second];
      if (node_port_[n] >= 0) {
        c.ports.push_back(node_port_[n]);
      } else {
        c.internals.push_back(node_internal_[n]);
      }
    }
    for (auto& c : s_->dc_comps) std::sort(c.ports.begin(), c.ports.end());
  }

  // ---- DC stamp pattern: port projection + structural certificates -------
  // The certificates license the engine to skip the flat structural pass:
  //   S3  every internal unknown has a diagonal entry, so a flat matching
  //       restricted to instance internals is the identity and a perfect
  //       matching of the reduced top level extends to a perfect flat one;
  //   S4  every pattern component free of port unknowns contains a
  //       DC-stamping device with a ground terminal — exactly the
  //       groundedness criterion analyze_structure applies — so no
  //       instance-internal block of the flat pattern is floating.
  // Components that do touch ports are grounded through the reduced top
  // level, which the engine separately requires to be structurally clean.
  bool collect_pattern() {
    const Circuit& ckt = mini_->circuit();
    spice::MnaLayout layout(ckt.node_count());
    for (const auto& dev : ckt.devices()) {
      const std::size_t before = layout.unknown_count();
      dev->reserve(layout);
      if (layout.unknown_count() != before) {
        fail("device '" + dev->name() + "' allocates branch unknowns");
        return false;
      }
    }
    const std::size_t unknowns = layout.unknown_count();
    linalg::SparseBuilder builder(unknowns);
    std::vector<std::pair<std::size_t, std::size_t>> stamped;
    stamped.reserve(ckt.devices().size());
    for (const auto& dev : ckt.devices()) {
      spice::PatternContext ctx(layout, builder, /*dc=*/true);
      const std::size_t before = builder.triplets().size();
      dev->stamp_pattern(ctx);
      stamped.emplace_back(before, builder.triplets().size());
    }
    const auto& trips = builder.triplets();

    // S3: internal diagonals.
    std::vector<bool> has_diag(unknowns, false);
    for (const auto& t : trips) {
      if (t.row == t.col) has_diag[t.row] = true;
    }
    for (NodeId n = 1; n < ckt.node_count(); ++n) {
      if (node_internal_[n] < 0) continue;
      if (!has_diag[layout.node_index(n)]) {
        fail("internal node '" + ckt.node_name(n) +
             "' has no DC diagonal stamp");
        return false;
      }
    }

    // Port x port projection (deduplicated, deterministic order).
    std::set<std::pair<int, int>> projected;
    for (const auto& t : trips) {
      const int pr = node_port_[t.row + 1];
      const int pc = node_port_[t.col + 1];
      if (pr >= 0 && pc >= 0) projected.emplace(pr, pc);
    }
    s_->port_pattern.assign(projected.begin(), projected.end());

    // S4 over the bipartite equation/unknown graph: rows 0..U-1, columns
    // U..2U-1, one union per pattern entry — the same components
    // analyze_structure derives.
    std::vector<std::size_t> parent(2 * unknowns);
    std::iota(parent.begin(), parent.end(), std::size_t{0});
    std::vector<char> touched(2 * unknowns, 0);
    for (const auto& t : trips) {
      uf_unite(parent, t.row, unknowns + t.col);
      touched[t.row] = 1;
      touched[unknowns + t.col] = 1;
    }
    std::map<std::size_t, bool> grounded;    // component root -> grounded
    std::map<std::size_t, bool> has_port;    // component root -> port member
    const auto& devices = ckt.devices();
    for (std::size_t i = 0; i < devices.size(); ++i) {
      if (stamped[i].first == stamped[i].second) continue;  // pattern-empty
      const std::size_t comp = uf_find(parent, trips[stamped[i].first].row);
      bool gnd = false;
      for (const auto& term : devices[i]->terminals()) {
        if (term.node == spice::kGround) {
          gnd = true;
          break;
        }
      }
      grounded[comp] = grounded[comp] || gnd;
    }
    for (std::size_t u = 0; u < unknowns; ++u) {
      if (node_port_[u + 1] < 0) continue;
      has_port[uf_find(parent, u)] = true;
      has_port[uf_find(parent, unknowns + u)] = true;
    }
    for (std::size_t u = 0; u < unknowns; ++u) {
      if (node_internal_[u + 1] < 0) continue;
      for (const std::size_t root :
           {uf_find(parent, u), uf_find(parent, unknowns + u)}) {
        if (!has_port.count(root) && !grounded[root]) {
          fail("pattern block around internal node '" +
               ckt.node_name(u + 1) +
               "' has no port or ground reference");
          return false;
        }
      }
    }

    // Interface-touching classes (untouched port vertices contribute no
    // edges def-side and impose nothing on the composed proof).
    std::map<std::size_t, std::size_t> class_of_root;
    for (int p = 0; p < s_->port_count; ++p) {
      const NodeId id = port_node_[static_cast<std::size_t>(p)];
      if (id == spice::kGround) continue;  // unused port
      const std::size_t u = layout.node_index(id);
      for (int side = 0; side < 2; ++side) {
        const std::size_t v = side == 0 ? u : unknowns + u;
        if (!touched[v]) continue;
        const std::size_t root = uf_find(parent, v);
        auto [it, fresh] = class_of_root.emplace(root, s_->port_classes.size());
        if (fresh) {
          PortClassFact f;
          f.grounded = grounded[root];
          s_->port_classes.push_back(std::move(f));
        }
        s_->port_classes[it->second].members.emplace_back(side, p);
      }
    }
    return true;
  }

  // ---- FET / MTJ facts for the composed SRAM topology rules --------------
  void collect_devices() {
    const Circuit& ckt = mini_->circuit();
    std::vector<std::pair<NodeId, NodeId>> gate_drain;
    for (const auto& dev : ckt.devices()) {
      if (const auto* fet =
              dynamic_cast<const spice::FinFETElement*>(dev.get())) {
        ++s_->fet_count;
        for (const NodeId ch : {fet->drain(), fet->source()}) {
          if (ch == spice::kGround) {
            s_->gnd_channel = true;
          } else if (node_port_[ch] >= 0) {
            s_->channel_ports.push_back(node_port_[ch]);
          } else {
            s_->internals[static_cast<std::size_t>(node_internal_[ch])]
                .channel = true;
          }
        }
        if (node_port_[fet->gate()] >= 0 && node_port_[fet->drain()] >= 0) {
          s_->port_half_pairs.emplace_back(node_port_[fet->gate()],
                                           node_port_[fet->drain()]);
        }
        gate_drain.emplace_back(fet->gate(), fet->drain());
      }
    }
    std::sort(s_->channel_ports.begin(), s_->channel_ports.end());
    s_->channel_ports.erase(
        std::unique(s_->channel_ports.begin(), s_->channel_ports.end()),
        s_->channel_ports.end());
    for (std::size_t i = 0; i < gate_drain.size() && !s_->local_cross_pair;
         ++i) {
      for (std::size_t j = i + 1; j < gate_drain.size(); ++j) {
        if (gate_drain[i].first == gate_drain[j].second &&
            gate_drain[j].first == gate_drain[i].second &&
            gate_drain[i].first != gate_drain[i].second) {
          s_->local_cross_pair = true;
          break;
        }
      }
    }

    auto mtj_terminal = [&](NodeId n) {
      MtjTerminal t;
      if (n == spice::kGround) {
        t.ground = true;
      } else if (node_port_[n] >= 0) {
        t.port = node_port_[n];
      } else {
        t.internal_channel =
            s_->internals[static_cast<std::size_t>(node_internal_[n])].channel;
      }
      return t;
    };
    for (const auto& dev : ckt.devices()) {
      if (const auto* mtj =
              dynamic_cast<const spice::MTJElement*>(dev.get())) {
        ++s_->mtj_count;
        DefMtj m;
        m.local_name =
            dev->name().size() > s_->local_prefix.size()
                ? dev->name().substr(s_->local_prefix.size())
                : dev->name();
        m.line = device_line_of(*mini_, dev->name());
        m.pinned = mtj_terminal(mtj->pinned_node());
        m.free = mtj_terminal(mtj->free_node());
        s_->mtjs.push_back(std::move(m));
      }
    }
  }

  // ---- definition-local diagnostics, replicated per instance -------------
  // Message/device/node text keeps the probe names ("X0.q", "__p3"); the
  // composer rewrites them to instance names.  Severities are the catalog
  // defaults; the composer applies the caller's options.
  void collect_local_diags() {
    const Circuit& ckt = mini_->circuit();
    auto local = [&](const char* rule, std::string msg, std::string device,
                     std::string node, int line) {
      Diagnostic d;
      d.rule = rule;
      d.severity = default_severity(rule);
      d.message = std::move(msg);
      d.device = std::move(device);
      d.node = std::move(node);
      d.line = line;
      s_->local_diags.push_back(std::move(d));
    };

    // float-node over definition-internal nodes (ports compose globally).
    for (NodeId n = 1; n < ckt.node_count(); ++n) {
      if (node_internal_[n] < 0) continue;
      const auto& pins = graph_->pins(n);
      const std::string& name = ckt.node_name(n);
      if (pins.empty()) {
        local(rules::kFloatNode,
              "node '" + name + "' is not attached to any device pin", "",
              name, mini_->node_line(name));
      } else if (pins.size() == 1) {
        local(rules::kFloatNode,
              "node '" + name + "' is attached to a single device pin ('" +
                  pins[0].device->name() + "' " + pins[0].role + ")",
              "", name, mini_->node_line(name));
      }
    }

    // self-connected (flat message formats verbatim).
    for (const auto& dev : ckt.devices()) {
      if (dev->voltage_branch()) continue;
      if (const auto* fet =
              dynamic_cast<const spice::FinFETElement*>(dev.get())) {
        if (fet->drain() == fet->source()) {
          local(rules::kSelfConnected,
                "FET '" + dev->name() +
                    "' has drain and source on the same node; the channel "
                    "can never conduct",
                dev->name(), "", device_line_of(*mini_, dev->name()));
        }
        continue;
      }
      const auto terms = dev->terminals();
      if (terms.size() == 2 && terms[0].node == terms[1].node) {
        local(rules::kSelfConnected,
              "device '" + dev->name() + "' has both terminals on node '" +
                  ckt.node_name(terms[0].node) +
                  "'; its stamps cancel and it carries no signal",
              dev->name(), "", device_line_of(*mini_, dev->name()));
      }
    }

    // nonphysical-value (same dynamic_cast ladder and message format).
    auto check_positive = [&](const Device& dev, const char* what,
                              double value) {
      if (value > 0.0) return;
      std::ostringstream msg;
      msg << "device '" << dev.name() << "' has non-physical " << what << " "
          << value << " (must be > 0)";
      local(rules::kNonphysicalValue, msg.str(), dev.name(), "",
            device_line_of(*mini_, dev.name()));
    };
    for (const auto& dev : ckt.devices()) {
      if (const auto* r = dynamic_cast<const spice::Resistor*>(dev.get())) {
        check_positive(*dev, "resistance", r->resistance());
      } else if (const auto* c =
                     dynamic_cast<const spice::Capacitor*>(dev.get())) {
        check_positive(*dev, "capacitance", c->capacitance());
      } else if (const auto* l =
                     dynamic_cast<const spice::Inductor*>(dev.get())) {
        check_positive(*dev, "inductance", l->inductance());
      } else if (const auto* fet = dynamic_cast<const spice::FinFETElement*>(
                     dev.get())) {
        const auto& p = fet->model().params();
        check_positive(*dev, "fin count", static_cast<double>(p.fin_count));
        check_positive(*dev, "channel length", p.channel_length);
      } else if (const auto* mtj =
                     dynamic_cast<const spice::MTJElement*>(dev.get())) {
        const auto& p = mtj->model().params();
        check_positive(*dev, "tau0", p.tau0);
        check_positive(*dev, "diameter", p.diameter);
      } else if (const auto* diode =
                     dynamic_cast<const spice::Diode*>(dev.get())) {
        check_positive(*dev, "saturation current",
                       diode->saturation_current());
      }
    }
  }

  const spice::SubcktInfo& info_;
  std::shared_ptr<DefSummary> s_;
  std::unique_ptr<spice::ParsedNetlist> mini_;
  std::optional<CircuitGraph> graph_;
  std::vector<NodeId> port_node_;   // port index -> mini node (kGround: unused)
  std::vector<int> node_port_;      // mini node -> port index or -1
  std::vector<int> node_internal_;  // mini node -> internals index or -1
};

}  // namespace

std::string port_placeholder(int port_index) {
  return "__p" + std::to_string(port_index);
}

std::shared_ptr<const DefSummary> summarize_subckt(
    const spice::SubcktInfo& info) {
  return SummaryBuilder(info).build();
}

}  // namespace nvsram::lint::hier
