// Per-definition interface summaries for the hierarchical lint engine.
//
// A DefSummary is everything lint_hier needs to know about one `.subckt`
// definition to compose the structural lint verdicts without re-analyzing
// the flattened instances:
//
//   * connectivity quotients over the interface — the plain-DC classes
//     (one per connected component under every dc_paths edge) drive both
//     the per-instance surrogate wiring in the reduced top level and the
//     composed no-dc-path islands;
//   * per-port stamp facts — the port x port projection of the definition's
//     DC MNA sparsity pattern (the surrogate's stamp_pattern entries) and
//     per-port pin counts for the composed float-node rule;
//   * structural certificates, baked into `ok` — every internal node owns a
//     DC diagonal stamp (so the flat matching restricted to instance
//     internals is the identity) and every port-free pattern component is
//     grounded by the same criterion spice/structural_analysis.cpp applies
//     (a DC-stamping member device with a ground terminal).  Together with
//     a clean reduced top level these prove the flat structural pass clean;
//   * device facts for the composed SRAM topology rules (MTJ layer
//     placement, channel ports, cross-coupled pairs) and the gate counts;
//   * definition-local diagnostics computed once and replicated into every
//     instance (internal float-node, self-connected, nonphysical-value).
//     Names in the stored diagnostics keep the builder's "X0." device
//     prefix and "__p<k>" port placeholders; the composer rewrites both
//     per instance.
//
// Summaries depend only on the definition text, so they are cached
// process-wide under SubcktInfo::content_hash (lint/lint_cache.h).  A
// definition the summary machinery cannot represent (unsupported card
// kinds, branch-allocating devices, a failed certificate) yields
// ok == false with a reason; the engine then falls back to the flat linter
// wholesale, keeping hierarchical lint verdict-identical by construction.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "lint/diagnostic.h"

namespace nvsram::spice {
struct SubcktInfo;
}  // namespace nvsram::spice

namespace nvsram::lint::hier {

// One definition-internal node (a node of the definition that is not a
// port; its flat name is "<instance>.<name>").
struct InternalNode {
  std::string name;      // local name, no instance prefix
  int line = -1;         // body line where it first appears
  bool channel = false;  // drain or source of some definition FET
};

struct PortFact {
  std::string name;  // as written on the .subckt card
  int pins = 0;      // definition-device pins on this port
  // When pins == 1: the one attached pin, for the flat-identical
  // single-pin float-node message.
  std::string single_pin_device;  // with the builder's "X0." prefix
  std::string single_pin_role;
};

// One plain-DC connectivity class: a connected component of the definition
// under every dc_paths edge (steering FETs included), ground excluded.
struct DcComponent {
  std::vector<int> ports;      // member port indices, sorted
  std::vector<int> internals;  // member internal-node indices
  bool grounded = false;       // some member conducts to ground at DC
};

// Where an MTJ layer lands relative to the interface.
struct MtjTerminal {
  int port = -1;                // >= 0: port index
  bool ground = false;          // terminal on node 0
  bool internal_channel = false;  // internal node that is a def-FET channel
};

struct DefMtj {
  std::string local_name;  // no prefix, e.g. "Y1"
  int line = -1;
  MtjTerminal pinned, free;
};

// One equation/unknown bipartite pattern class of the definition that
// touches the interface: the port-side vertices it contains (side 0 = KCL
// row, 1 = voltage column) plus whether a member device grounds the class
// under structural_analysis's attribution rule.  The composer unions these
// vertices in the reduced top level's pattern graph — merges that happen
// through definition interiors (a gate rail read by every cell) are
// invisible to the port x port stamp projection alone.
struct PortClassFact {
  std::vector<std::pair<int, int>> members;  // (side, port index)
  bool grounded = false;
};

struct DefSummary {
  bool ok = false;
  std::string fail_reason;  // set when ok == false
  std::uint64_t content_hash = 0;
  std::string def_name;
  int port_count = 0;
  // Device/node prefix the probe instantiation produced (normally "X0.");
  // every occurrence in stored names and messages is rewritten to
  // "<instance>." by the composer.
  std::string local_prefix;

  int fet_count = 0;
  int mtj_count = 0;

  std::vector<PortFact> ports;
  std::vector<InternalNode> internals;
  std::vector<DcComponent> dc_comps;

  // Port x port projection of the definition's DC stamp pattern: the
  // surrogate device's stamp_pattern entries (a subset of what the
  // flattened definition stamps between its bound nodes).
  std::vector<std::pair<int, int>> port_pattern;

  // Interface-touching bipartite pattern classes, for the composed
  // ground-reference (floating-block) proof.
  std::vector<PortClassFact> port_classes;

  // (gate port, drain port) of every def FET whose gate AND drain are both
  // ports — candidate halves of a cross-instance cross-coupled pair.
  std::vector<std::pair<int, int>> port_half_pairs;
  bool local_cross_pair = false;  // cross-coupled FET pair inside the def
  std::vector<int> channel_ports;  // ports that are a def-FET drain/source
  bool gnd_channel = false;        // some def FET channel terminal is ground

  std::vector<DefMtj> mtjs;

  // Diagnostics that replicate into every instance, unfiltered (severity =
  // default_severity; the composer applies the caller's enable/severity
  // options).  Device/node names and message text carry the builder's
  // "X0." prefix and "__p<k>" port placeholders.
  std::vector<Diagnostic> local_diags;
};

// Port placeholder node name used by the builder's probe instantiation;
// exposed for the composer's rewrite pass.
std::string port_placeholder(int port_index);

// Analyzes one definition in isolation.  Never throws: unrepresentable
// definitions come back with ok == false and a reason.
std::shared_ptr<const DefSummary> summarize_subckt(
    const spice::SubcktInfo& info);

}  // namespace nvsram::lint::hier
