// Lint entry points.
//
// lint_circuit() runs the structural rules on a bare Circuit (programmatic
// construction; no line numbers, no card context).  lint_netlist() runs the
// full rule set on a ParsedNetlist: circuit rules plus card/probe resolution
// and parser-recorded diagnostics, with source line attribution.
//
// ParsedNetlist::run_* call lint_netlist() by default and throw
// lint::LintError when any error-severity diagnostic is present, so bad
// inputs are rejected before the first Newton iteration instead of
// surfacing as a late `singular` flag or silently wrong energies.
#pragma once

#include "lint/report.h"
#include "lint/rules.h"

namespace nvsram::spice {
class Circuit;
class ParsedNetlist;
}  // namespace nvsram::spice

namespace nvsram::lint {

LintReport lint_circuit(const spice::Circuit& circuit,
                        const LintOptions& options = {});

LintReport lint_netlist(const spice::ParsedNetlist& netlist,
                        const LintOptions& options = {});

}  // namespace nvsram::lint
