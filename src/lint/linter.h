// Lint entry points.
//
// lint_circuit() runs the structural rules on a bare Circuit (programmatic
// construction; no line numbers, no card context).  lint_netlist() runs the
// full rule set on a ParsedNetlist: circuit rules plus card/probe resolution
// and parser-recorded diagnostics, with source line attribution.
//
// ParsedNetlist::run_* call lint_netlist() by default and throw
// lint::LintError when any error-severity diagnostic is present, so bad
// inputs are rejected before the first Newton iteration instead of
// surfacing as a late `singular` flag or silently wrong energies.
#pragma once

#include <string>
#include <unordered_set>

#include "lint/report.h"
#include "lint/rules.h"

namespace nvsram::spice {
class Circuit;
class ParsedNetlist;
}  // namespace nvsram::spice

namespace nvsram::lint {

// Pass-group selection for lint_netlist_passes().  The flat entry points run
// everything; the hierarchical engine (lint/hier/) composes the structural
// group itself from per-definition summaries and runs the remaining groups
// here verbatim, so those verdicts are flat-identical by construction.
struct LintPasses {
  // float-node / no-dc-path / vsource-* / self-connected / structural-* /
  // nonphysical-value / sram-* (needs the CircuitGraph).
  bool structural = true;
  bool cards = true;     // card-unresolved
  bool probes = true;    // probe-unresolved
  bool temporal = true;  // protocol-* / units-* / power-* / data-*
  bool parse = true;     // parser-recorded diagnostics (subckt-unused-port, ...)

  // Names already reported floating by a composed structural pass; seeds the
  // dedupe set the power pass consumes when `structural` is false (the flat
  // structural group normally fills it).
  std::unordered_set<std::string> preset_floating;
};

LintReport lint_circuit(const spice::Circuit& circuit,
                        const LintOptions& options = {});

LintReport lint_netlist(const spice::ParsedNetlist& netlist,
                        const LintOptions& options = {});

// Runs only the selected pass groups over the parsed netlist.  With the
// structural group disabled the flat CircuitGraph is never built, so the
// call costs O(devices) dispatch plus the temporal passes.
LintReport lint_netlist_passes(const spice::ParsedNetlist& netlist,
                               const LintOptions& options,
                               LintPasses passes);

// Hierarchical summary-based lint (lint/hier/): analyzes each .subckt
// definition once, composes per-instance interface summaries, and runs the
// top-level rules on the reduced (unflattened) card set — O(unique defs +
// instances·ports) instead of O(flattened devices).  Verdict-identical to
// lint_netlist(): whenever a definition or the composition cannot be
// certified exact, the engine falls back to the flat path wholesale.
LintReport lint_netlist_hier(const spice::ParsedNetlist& netlist,
                             const LintOptions& options = {});

}  // namespace nvsram::lint
