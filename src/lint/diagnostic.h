// Structured lint diagnostics.
//
// A Diagnostic ties a rule id and severity to the offending device/node and,
// when the circuit came from a netlist, to the source line.  Diagnostics are
// value types with no dependency on the spice layer so that front ends (CLI,
// parser, future format importers) can produce and consume them freely.
#pragma once

#include <iosfwd>
#include <string>

namespace nvsram::lint {

enum class Severity { kInfo, kWarning, kError };

const char* to_string(Severity s);

struct Diagnostic {
  std::string rule;      // rule id, e.g. "no-dc-path"
  Severity severity = Severity::kWarning;
  std::string message;   // human-readable, self-contained description
  std::string device;    // offending device name ("" when not device-bound)
  std::string node;      // offending node name ("" when not node-bound)
  int line = -1;         // 1-based netlist source line, -1 when unknown
  std::string phase;     // testbench phase covering the event ("" when n/a)
  // Hierarchical instance path of the offending device/node for findings
  // inside flattened .subckt instances, e.g. "X3/X17" for device
  // "X3.X17.M2"; "" for top-level findings.
  std::string instance_path;

  // "error[no-dc-path]: node 'y' ... (line 7)" / "... (phase store)" /
  // "... (in X3/X17)"
  std::string format() const;

  // Location key ignoring which instance the finding replicated into:
  // rule + device/node with the instance path stripped.  Identical keys
  // across instances collapse into one deduplicated finding (CLI output,
  // --baseline matching).
  std::string dedup_key() const;
};

std::ostream& operator<<(std::ostream& os, const Diagnostic& d);

}  // namespace nvsram::lint
