#include "util/log.h"

#include <atomic>
#include <cstdio>

namespace nvsram::util {

namespace {
// The threshold is read from sweep worker threads (parallel SweepRunner
// points log their own warnings), so it is atomic; writes are still expected
// only from single-threaded setup code.
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_message(LogLevel level, const std::string& msg) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  // One fprintf per line: POSIX stdio locks the stream, so concurrent
  // worker-thread messages interleave by line, never mid-line.
  std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
}

}  // namespace nvsram::util
