// Worker-side crash breadcrumb: a one-line "point=<i> attempt=<a>
// phase=<step>" record of what a sweep worker subprocess is doing right
// now, maintained so its supervisor can attribute a crash to the exact
// point and characterization phase that killed the process.
//
// Two channels, both best-effort:
//   * a pre-opened breadcrumb FILE fd, eagerly rewritten on every
//     set_point / set_phase call — survives even SIGKILL (the supervisor
//     reads the file after the worker's death), and
//   * a pre-formatted CRASH frame (runner/ipc.h framing) written by the
//     fatal-signal handler onto the result pipe before the signal is
//     re-raised — delivers the breadcrumb in-band for SIGSEGV / SIGABRT /
//     SIGBUS / SIGFPE / SIGILL.
//
// Everything is process-global and lock-free (a worker is single-threaded);
// when unarmed — i.e. in ordinary in-process execution — every call is a
// cheap no-op, so hot paths like CellCharacterizer::characterize can call
// set_phase unconditionally.  Lives in util (not runner) so sram/ can hook
// phases without depending on the runner layer.
#pragma once

#include <cstddef>

namespace nvsram::util::breadcrumb {

// Arms the breadcrumb for this process: `file_fd` receives the eager
// rewrites (pass -1 to skip), `crash_frame_fd` receives the signal-handler
// CRASH frame (pass -1 to skip).  Installs handlers for the fatal signals
// listed above; each handler writes the frame and re-raises with the
// default disposition so the parent still sees the true signal.
void arm(int file_fd, int crash_frame_fd);

// Restores default signal dispositions and forgets the fds (the caller
// owns and closes them).  Safe to call when unarmed.
void disarm();

bool armed();

// Updates the current-position line.  set_point resets the phase to
// "start"; set_phase keeps the current point.  No-ops when unarmed.
void set_point(std::size_t index, int attempt);
void set_phase(const char* phase);
void set_idle();

}  // namespace nvsram::util::breadcrumb
