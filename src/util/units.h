// SI unit helpers and engineering-notation formatting.
//
// The whole code base works in plain SI base units (volts, amperes, seconds,
// farads, ohms, joules, watts, meters).  These helpers make literals in
// source code and values in printed tables readable.
#pragma once

#include <string>

namespace nvsram::util {

// ---- scale constants -------------------------------------------------------
inline constexpr double kTera  = 1e12;
inline constexpr double kGiga  = 1e9;
inline constexpr double kMega  = 1e6;
inline constexpr double kKilo  = 1e3;
inline constexpr double kMilli = 1e-3;
inline constexpr double kMicro = 1e-6;
inline constexpr double kNano  = 1e-9;
inline constexpr double kPico  = 1e-12;
inline constexpr double kFemto = 1e-15;
inline constexpr double kAtto  = 1e-18;

// ---- user-defined literals -------------------------------------------------
// Usage: using namespace nvsram::util::literals;  auto t = 10.0_ns;
namespace literals {
constexpr double operator""_T(long double v) { return static_cast<double>(v) * 1e12; }
constexpr double operator""_G(long double v) { return static_cast<double>(v) * 1e9; }
constexpr double operator""_M(long double v) { return static_cast<double>(v) * 1e6; }
constexpr double operator""_k(long double v) { return static_cast<double>(v) * 1e3; }
constexpr double operator""_m(long double v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_u(long double v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_n(long double v) { return static_cast<double>(v) * 1e-9; }
constexpr double operator""_p(long double v) { return static_cast<double>(v) * 1e-12; }
constexpr double operator""_f(long double v) { return static_cast<double>(v) * 1e-15; }

constexpr double operator""_V(long double v) { return static_cast<double>(v); }
constexpr double operator""_mV(long double v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_uA(long double v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_nA(long double v) { return static_cast<double>(v) * 1e-9; }
constexpr double operator""_pA(long double v) { return static_cast<double>(v) * 1e-12; }
constexpr double operator""_ns(long double v) { return static_cast<double>(v) * 1e-9; }
constexpr double operator""_us(long double v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_ms(long double v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_ps(long double v) { return static_cast<double>(v) * 1e-12; }
constexpr double operator""_fF(long double v) { return static_cast<double>(v) * 1e-15; }
constexpr double operator""_fJ(long double v) { return static_cast<double>(v) * 1e-15; }
constexpr double operator""_pJ(long double v) { return static_cast<double>(v) * 1e-12; }
constexpr double operator""_nm(long double v) { return static_cast<double>(v) * 1e-9; }
constexpr double operator""_um(long double v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_kOhm(long double v) { return static_cast<double>(v) * 1e3; }
constexpr double operator""_MHz(long double v) { return static_cast<double>(v) * 1e6; }
constexpr double operator""_GHz(long double v) { return static_cast<double>(v) * 1e9; }
}  // namespace literals

// ---- physical constants ----------------------------------------------------
inline constexpr double kBoltzmann = 1.380649e-23;   // J/K
inline constexpr double kElectronCharge = 1.602176634e-19;  // C
inline constexpr double kEps0 = 8.8541878128e-12;    // F/m
inline constexpr double kEpsSiO2 = 3.9 * kEps0;
inline constexpr double kEpsSi = 11.7 * kEps0;
inline constexpr double kRoomTemperature = 300.0;    // K

// Thermal voltage kT/q at temperature T (kelvin).
double thermal_voltage(double temperature_kelvin = kRoomTemperature);

// ---- dimensional algebra ---------------------------------------------------
// Symbolic SI dimension as integer exponents over the base units this code
// base uses.  Multiplication/division compose exponents, so derived formulas
// (Ic = Jc * A, E = I * V * t, ...) can be checked to close dimensionally at
// run time by the `units-*` lint rules.
struct Dim {
  int m = 0;   // meter
  int kg = 0;  // kilogram
  int s = 0;   // second
  int A = 0;   // ampere
  int K = 0;   // kelvin

  friend constexpr bool operator==(const Dim& a, const Dim& b) {
    return a.m == b.m && a.kg == b.kg && a.s == b.s && a.A == b.A &&
           a.K == b.K;
  }
  friend constexpr bool operator!=(const Dim& a, const Dim& b) {
    return !(a == b);
  }
  friend constexpr Dim operator*(const Dim& a, const Dim& b) {
    return {a.m + b.m, a.kg + b.kg, a.s + b.s, a.A + b.A, a.K + b.K};
  }
  friend constexpr Dim operator/(const Dim& a, const Dim& b) {
    return {a.m - b.m, a.kg - b.kg, a.s - b.s, a.A - b.A, a.K - b.K};
  }
};

// Renders as "m^2 kg s^-3 A^-1" ("1" for the scalar dimension).
std::string to_string(const Dim& d);

namespace dims {
inline constexpr Dim kScalar{};
inline constexpr Dim kMeter{1, 0, 0, 0, 0};
inline constexpr Dim kArea{2, 0, 0, 0, 0};
inline constexpr Dim kSecond{0, 0, 1, 0, 0};
inline constexpr Dim kAmpere{0, 0, 0, 1, 0};
inline constexpr Dim kKelvin{0, 0, 0, 0, 1};
inline constexpr Dim kVolt{2, 1, -3, -1, 0};
inline constexpr Dim kOhm{2, 1, -3, -2, 0};
inline constexpr Dim kFarad{-2, -1, 4, 2, 0};
inline constexpr Dim kJoule{2, 1, -2, 0, 0};
inline constexpr Dim kWatt{2, 1, -3, 0, 0};
inline constexpr Dim kCurrentDensity{-2, 0, 0, 1, 0};  // A/m^2
}  // namespace dims

// A value tagged with its dimension.  Arithmetic composes dimensions; adding
// quantities of different dimensions throws std::invalid_argument (that IS
// the dimension error the lint pass reports).
struct Quantity {
  double value = 0.0;
  Dim dim{};

  friend constexpr Quantity operator*(const Quantity& a, const Quantity& b) {
    return {a.value * b.value, a.dim * b.dim};
  }
  friend constexpr Quantity operator/(const Quantity& a, const Quantity& b) {
    return {a.value / b.value, a.dim / b.dim};
  }
  // Addition/subtraction require identical dimensions.
  friend Quantity operator+(const Quantity& a, const Quantity& b);
  friend Quantity operator-(const Quantity& a, const Quantity& b);
};

// "15.708 uA [A]" — si_format of the value plus the dimension.
std::string to_string(const Quantity& q, const std::string& unit_hint = "");

// ---- formatting ------------------------------------------------------------
// Format `value` with an SI prefix and the given unit, e.g. 1.5e-9 s ->
// "1.500 ns".  `digits` is the number of significant decimals.
std::string si_format(double value, const std::string& unit, int digits = 3);

// Format in fixed engineering notation without prefix (e.g. "1.234e-09").
std::string sci_format(double value, int digits = 4);

}  // namespace nvsram::util
