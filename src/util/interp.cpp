#include "util/interp.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

namespace nvsram::util {

PiecewiseLinear::PiecewiseLinear(std::vector<double> xs, std::vector<double> ys)
    : xs_(std::move(xs)), ys_(std::move(ys)) {
  if (xs_.size() != ys_.size()) {
    throw std::invalid_argument("PiecewiseLinear: size mismatch");
  }
  for (std::size_t i = 1; i < xs_.size(); ++i) {
    if (!(xs_[i] > xs_[i - 1])) {
      throw std::invalid_argument("PiecewiseLinear: x not strictly increasing");
    }
  }
}

double PiecewiseLinear::operator()(double x) const {
  if (xs_.empty()) return 0.0;
  if (x <= xs_.front()) return ys_.front();
  if (x >= xs_.back()) return ys_.back();
  const auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
  const std::size_t i = static_cast<std::size_t>(it - xs_.begin());
  const double t = (x - xs_[i - 1]) / (xs_[i] - xs_[i - 1]);
  return ys_[i - 1] + t * (ys_[i] - ys_[i - 1]);
}

double PiecewiseLinear::extrapolate(double x) const {
  if (xs_.size() < 2) return (*this)(x);
  if (x < xs_.front()) {
    const double slope = (ys_[1] - ys_[0]) / (xs_[1] - xs_[0]);
    return ys_[0] + slope * (x - xs_[0]);
  }
  if (x > xs_.back()) {
    const std::size_t n = xs_.size();
    const double slope = (ys_[n - 1] - ys_[n - 2]) / (xs_[n - 1] - xs_[n - 2]);
    return ys_[n - 1] + slope * (x - xs_[n - 1]);
  }
  return (*this)(x);
}

std::optional<double> PiecewiseLinear::first_crossing(double level) const {
  for (std::size_t i = 1; i < xs_.size(); ++i) {
    const double f0 = ys_[i - 1] - level;
    const double f1 = ys_[i] - level;
    if (f0 == 0.0) return xs_[i - 1];
    if (f0 * f1 < 0.0) {
      const double t = f0 / (f0 - f1);
      return xs_[i - 1] + t * (xs_[i] - xs_[i - 1]);
    }
  }
  if (!ys_.empty() && ys_.back() == level) return xs_.back();
  return std::nullopt;
}

std::optional<double> PiecewiseLinear::first_intersection(
    const PiecewiseLinear& other) const {
  if (xs_.empty() || other.xs_.empty()) return std::nullopt;
  std::set<double> knots(xs_.begin(), xs_.end());
  knots.insert(other.xs_.begin(), other.xs_.end());

  std::optional<double> prev_x;
  double prev_d = 0.0;
  for (double x : knots) {
    const double d = (*this)(x) - other(x);
    if (prev_x) {
      if (prev_d == 0.0) return *prev_x;
      if (prev_d * d < 0.0) {
        const double t = prev_d / (prev_d - d);
        return *prev_x + t * (x - *prev_x);
      }
    }
    prev_x = x;
    prev_d = d;
  }
  return std::nullopt;
}

double trapezoid_integral(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("trapezoid_integral: size mismatch");
  }
  double sum = 0.0;
  for (std::size_t i = 1; i < xs.size(); ++i) {
    sum += 0.5 * (ys[i] + ys[i - 1]) * (xs[i] - xs[i - 1]);
  }
  return sum;
}

}  // namespace nvsram::util
