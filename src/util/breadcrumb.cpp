#include "util/breadcrumb.h"

#include <csignal>
#include <cstdio>
#include <cstring>

#if !defined(_WIN32)
#include <unistd.h>
#endif

namespace nvsram::util::breadcrumb {

namespace {

// All state is process-global and only mutated from the worker's main
// thread; the signal handler merely write()s the pre-formatted frame, so a
// crash that lands mid-rebuild at worst emits a torn breadcrumb (the
// supervisor treats the breadcrumb as best-effort and always trusts
// waitpid for the authoritative cause of death).
int g_file_fd = -1;
int g_crash_fd = -1;
bool g_armed = false;

std::size_t g_point = 0;
int g_attempt = 0;
char g_phase[160] = "start";

char g_line[480];
std::size_t g_line_len = 0;

// Pre-formatted CRASH frame: u32 little-endian payload length, one type
// byte, then the payload text.  The wire layout and the type value 4 MUST
// match runner/ipc.h (FrameType::kCrash) — duplicated here because util
// cannot depend on the runner layer.
constexpr unsigned char kCrashFrameType = 4;
char g_frame[512];
std::size_t g_frame_len = 0;

const int kFatalSignals[] = {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL};

extern "C" void on_fatal_signal(int sig) {
#if !defined(_WIN32)
  if (g_crash_fd >= 0 && g_frame_len > 0) {
    // Single write of a small frame: atomic w.r.t. the pipe (< PIPE_BUF).
    [[maybe_unused]] ssize_t rc = ::write(g_crash_fd, g_frame, g_frame_len);
  }
#endif
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

// Re-formats the line + frame and eagerly rewrites the breadcrumb file.
// Ordinary (non-signal) context only.
void rebuild(bool idle) {
  if (!g_armed) return;
  if (idle) {
    g_line_len = static_cast<std::size_t>(
        std::snprintf(g_line, sizeof(g_line), "idle"));
  } else {
    g_line_len = static_cast<std::size_t>(
        std::snprintf(g_line, sizeof(g_line), "point=%zu attempt=%d phase=%s",
                      g_point, g_attempt, g_phase));
  }
  if (g_line_len >= sizeof(g_line)) g_line_len = sizeof(g_line) - 1;

  const std::size_t payload = g_line_len;
  g_frame[0] = static_cast<char>(payload & 0xFF);
  g_frame[1] = static_cast<char>((payload >> 8) & 0xFF);
  g_frame[2] = static_cast<char>((payload >> 16) & 0xFF);
  g_frame[3] = static_cast<char>((payload >> 24) & 0xFF);
  g_frame[4] = static_cast<char>(kCrashFrameType);
  std::memcpy(g_frame + 5, g_line, payload);
  g_frame_len = payload + 5;

#if !defined(_WIN32)
  if (g_file_fd >= 0) {
    [[maybe_unused]] ssize_t rc = ::pwrite(g_file_fd, g_line, g_line_len, 0);
    [[maybe_unused]] int trc =
        ::ftruncate(g_file_fd, static_cast<off_t>(g_line_len));
  }
#endif
}

}  // namespace

void arm(int file_fd, int crash_frame_fd) {
  g_file_fd = file_fd;
  g_crash_fd = crash_frame_fd;
  g_armed = true;
  for (int sig : kFatalSignals) std::signal(sig, on_fatal_signal);
  rebuild(/*idle=*/true);
}

void disarm() {
  if (!g_armed) return;
  for (int sig : kFatalSignals) std::signal(sig, SIG_DFL);
  g_armed = false;
  g_file_fd = -1;
  g_crash_fd = -1;
  g_frame_len = 0;
}

bool armed() { return g_armed; }

void set_point(std::size_t index, int attempt) {
  if (!g_armed) return;
  g_point = index;
  g_attempt = attempt;
  std::snprintf(g_phase, sizeof(g_phase), "start");
  rebuild(/*idle=*/false);
}

void set_phase(const char* phase) {
  if (!g_armed) return;
  std::snprintf(g_phase, sizeof(g_phase), "%s", phase ? phase : "?");
  rebuild(/*idle=*/false);
}

void set_idle() {
  if (!g_armed) return;
  rebuild(/*idle=*/true);
}

}  // namespace nvsram::util::breadcrumb
