#include "util/units.h"

#include <array>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace nvsram::util {

namespace {

void append_exp(std::ostringstream& os, const char* base, int exp) {
  if (exp == 0) return;
  if (os.tellp() > 0) os << ' ';
  os << base;
  if (exp != 1) os << '^' << exp;
}

}  // namespace

std::string to_string(const Dim& d) {
  std::ostringstream os;
  append_exp(os, "m", d.m);
  append_exp(os, "kg", d.kg);
  append_exp(os, "s", d.s);
  append_exp(os, "A", d.A);
  append_exp(os, "K", d.K);
  std::string out = os.str();
  return out.empty() ? "1" : out;
}

Quantity operator+(const Quantity& a, const Quantity& b) {
  if (a.dim != b.dim) {
    throw std::invalid_argument("Quantity: adding [" + to_string(a.dim) +
                                "] to [" + to_string(b.dim) + "]");
  }
  return {a.value + b.value, a.dim};
}

Quantity operator-(const Quantity& a, const Quantity& b) {
  if (a.dim != b.dim) {
    throw std::invalid_argument("Quantity: subtracting [" + to_string(b.dim) +
                                "] from [" + to_string(a.dim) + "]");
  }
  return {a.value - b.value, a.dim};
}

std::string to_string(const Quantity& q, const std::string& unit_hint) {
  return si_format(q.value, unit_hint) + " [" + to_string(q.dim) + "]";
}

double thermal_voltage(double temperature_kelvin) {
  return kBoltzmann * temperature_kelvin / kElectronCharge;
}

std::string si_format(double value, const std::string& unit, int digits) {
  struct Prefix {
    double scale;
    const char* symbol;
  };
  static constexpr std::array<Prefix, 13> kPrefixes = {{
      {1e18, "E"}, {1e15, "P"}, {1e12, "T"}, {1e9, "G"}, {1e6, "M"},
      {1e3, "k"}, {1.0, ""}, {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"},
      {1e-12, "p"}, {1e-15, "f"}, {1e-18, "a"},
  }};

  if (value == 0.0 || !std::isfinite(value)) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f %s", digits, value, unit.c_str());
    return buf;
  }

  const double mag = std::fabs(value);
  const Prefix* chosen = &kPrefixes.back();
  for (const auto& p : kPrefixes) {
    if (mag >= p.scale) {
      chosen = &p;
      break;
    }
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f %s%s", digits, value / chosen->scale,
                chosen->symbol, unit.c_str());
  return buf;
}

std::string sci_format(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", digits, value);
  return buf;
}

}  // namespace nvsram::util
