#include "util/units.h"

#include <array>
#include <cmath>
#include <cstdio>

namespace nvsram::util {

double thermal_voltage(double temperature_kelvin) {
  return kBoltzmann * temperature_kelvin / kElectronCharge;
}

std::string si_format(double value, const std::string& unit, int digits) {
  struct Prefix {
    double scale;
    const char* symbol;
  };
  static constexpr std::array<Prefix, 13> kPrefixes = {{
      {1e18, "E"}, {1e15, "P"}, {1e12, "T"}, {1e9, "G"}, {1e6, "M"},
      {1e3, "k"}, {1.0, ""}, {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"},
      {1e-12, "p"}, {1e-15, "f"}, {1e-18, "a"},
  }};

  if (value == 0.0 || !std::isfinite(value)) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f %s", digits, value, unit.c_str());
    return buf;
  }

  const double mag = std::fabs(value);
  const Prefix* chosen = &kPrefixes.back();
  for (const auto& p : kPrefixes) {
    if (mag >= p.scale) {
      chosen = &p;
      break;
    }
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f %s%s", digits, value / chosen->scale,
                chosen->symbol, unit.c_str());
  return buf;
}

std::string sci_format(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", digits, value);
  return buf;
}

}  // namespace nvsram::util
