// Wall-clock watchdog: a deadline token handed to long-running work
// (transient loops, sweep points) so a pathological operating point cannot
// hang an entire run.  Expiry is reported by throwing WatchdogError, which
// the sweep runner maps to a recorded timeout instead of a crash.
#pragma once

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>

namespace nvsram::util {

class WatchdogError : public std::runtime_error {
 public:
  WatchdogError(const std::string& what, double budget_seconds)
      : std::runtime_error(what), budget_seconds_(budget_seconds) {}
  double budget_seconds() const { return budget_seconds_; }

 private:
  double budget_seconds_ = 0.0;
};

// A started stopwatch with an optional budget.  budget <= 0 never expires.
class Deadline {
 public:
  Deadline() = default;
  explicit Deadline(double budget_seconds) : budget_(budget_seconds) {}

  double budget_seconds() const { return budget_; }
  bool unlimited() const { return budget_ <= 0.0; }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  bool expired() const { return !unlimited() && elapsed_seconds() > budget_; }

  // Budget left for handing down to sub-phases; 0 when unlimited (callers
  // treat 0 as "no limit", matching the Deadline constructor).  Clamped to a
  // tiny positive value when (nearly) expired so a derived Deadline still
  // expires rather than becoming unlimited.
  double remaining_seconds() const {
    return unlimited() ? 0.0 : std::max(budget_ - elapsed_seconds(), 1e-9);
  }

  // Throws WatchdogError("<what>: ...") when expired; cheap otherwise.
  void check(const char* what) const {
    if (expired()) {
      throw WatchdogError(std::string(what) + ": wall-clock watchdog expired after " +
                              std::to_string(budget_) + " s",
                          budget_);
    }
  }

 private:
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
  double budget_ = 0.0;
};

}  // namespace nvsram::util
