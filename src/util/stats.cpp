#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nvsram::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double relative_error(double a, double b, double floor) {
  const double denom = std::max({std::fabs(a), std::fabs(b), floor});
  return std::fabs(a - b) / denom;
}

bool is_monotone_nondecreasing(const std::vector<double>& v, double slack) {
  for (std::size_t i = 1; i < v.size(); ++i) {
    const double allowed = slack * std::max(std::fabs(v[i]), std::fabs(v[i - 1]));
    if (v[i] < v[i - 1] - allowed) return false;
  }
  return true;
}

bool is_monotone_nonincreasing(const std::vector<double>& v, double slack) {
  for (std::size_t i = 1; i < v.size(); ++i) {
    const double allowed = slack * std::max(std::fabs(v[i]), std::fabs(v[i - 1]));
    if (v[i] > v[i - 1] + allowed) return false;
  }
  return true;
}

std::vector<double> logspace(double lo, double hi, std::size_t n) {
  if (lo <= 0.0 || hi <= 0.0) {
    throw std::invalid_argument("logspace: bounds must be positive");
  }
  if (n == 0) return {};
  if (n == 1) return {lo};
  std::vector<double> out(n);
  const double llo = std::log(lo);
  const double lhi = std::log(hi);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(n - 1);
    out[i] = std::exp(llo + t * (lhi - llo));
  }
  return out;
}

std::vector<double> linspace(double lo, double hi, std::size_t n) {
  if (n == 0) return {};
  if (n == 1) return {lo};
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(n - 1);
    out[i] = lo + t * (hi - lo);
  }
  return out;
}

}  // namespace nvsram::util
