// Aligned plain-text table printer for the bench harness output.
//
// The bench binaries print the same rows/series the paper's figures show;
// TablePrinter keeps those human-readable in a terminal.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace nvsram::util {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> columns);

  // Appends a row of preformatted cells; width is padded on print.
  void row(std::vector<std::string> cells);

  // Convenience: formats doubles with si_format.
  void row_si(const std::vector<double>& values, const std::vector<std::string>& units,
              int digits = 3);

  // Renders the full table (header, separator, rows) to `os`.
  void print(std::ostream& os) const;

  std::size_t size() const { return rows_.size(); }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

// Prints a section banner like "==== Fig. 7(a): ... ====".
void print_banner(std::ostream& os, const std::string& title);

}  // namespace nvsram::util
