// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) for cheap on-disk
// integrity checks — the sweep checkpoint appends one per row so a torn or
// bit-flipped record is detected at resume instead of being replayed into
// the CSV (see runner/checkpoint.h).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace nvsram::util {

// Plain table-driven CRC-32; crc of the empty string is 0.
std::uint32_t crc32(const void* data, std::size_t n);

inline std::uint32_t crc32(std::string_view text) {
  return crc32(text.data(), text.size());
}

}  // namespace nvsram::util
