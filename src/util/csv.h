// Minimal CSV writer used by the bench harnesses to dump figure series.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <vector>

namespace nvsram::util {

// Writes rows of doubles (plus a header) to a CSV file.  Opens lazily on the
// first row; throws std::runtime_error if the file cannot be created.
class CsvWriter {
 public:
  CsvWriter(std::string path, std::vector<std::string> columns);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;
  CsvWriter(CsvWriter&&) = default;
  CsvWriter& operator=(CsvWriter&&) = default;

  // Appends one data row; must match the column count.
  void row(const std::vector<double>& values);
  void row(std::initializer_list<double> values);

  // Appends a row of preformatted strings (e.g. mixed text/number rows).
  void text_row(const std::vector<std::string>& values);

  const std::string& path() const { return path_; }
  std::size_t rows_written() const { return rows_; }

  // Flush buffered output to disk.
  void flush();

 private:
  void ensure_open();

  std::string path_;
  std::vector<std::string> columns_;
  std::ofstream out_;
  bool opened_ = false;
  std::size_t rows_ = 0;
};

}  // namespace nvsram::util
