#include "util/table.h"

#include <algorithm>
#include <ostream>
#include <stdexcept>

#include "util/units.h"

namespace nvsram::util {

TablePrinter::TablePrinter(std::vector<std::string> columns)
    : columns_(std::move(columns)) {}

void TablePrinter::row(std::vector<std::string> cells) {
  if (cells.size() != columns_.size()) {
    throw std::runtime_error("TablePrinter: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

void TablePrinter::row_si(const std::vector<double>& values,
                          const std::vector<std::string>& units, int digits) {
  if (values.size() != columns_.size() || units.size() != columns_.size()) {
    throw std::runtime_error("TablePrinter: row width mismatch");
  }
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    cells.push_back(si_format(values[i], units[i], digits));
  }
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    widths[i] = columns_[i].size();
  }
  for (const auto& r : rows_) {
    for (std::size_t i = 0; i < r.size(); ++i) {
      widths[i] = std::max(widths[i], r[i].size());
    }
  }

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << (i ? "  " : "");
      os << cells[i];
      os << std::string(widths[i] - cells[i].size(), ' ');
    }
    os << '\n';
  };

  emit(columns_);
  std::size_t total = 0;
  for (std::size_t i = 0; i < widths.size(); ++i) {
    total += widths[i] + (i ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
}

void print_banner(std::ostream& os, const std::string& title) {
  os << "\n==== " << title << " ====\n";
}

}  // namespace nvsram::util
