#include "util/rootfind.h"

#include <algorithm>
#include <cmath>

namespace nvsram::util {

std::optional<RootResult> brent(const std::function<double(double)>& f, double a,
                                double b, const RootOptions& opts) {
  double fa = f(a);
  double fb = f(b);
  if (std::fabs(fa) <= opts.f_tolerance) return RootResult{a, fa, 0, true};
  if (std::fabs(fb) <= opts.f_tolerance) return RootResult{b, fb, 0, true};
  if (fa * fb > 0.0) return std::nullopt;

  double c = a, fc = fa;
  double d = b - a, e = d;

  for (int iter = 1; iter <= opts.max_iterations; ++iter) {
    if (std::fabs(fc) < std::fabs(fb)) {
      a = b; b = c; c = a;
      fa = fb; fb = fc; fc = fa;
    }
    const double tol = 2.0 * std::numeric_limits<double>::epsilon() * std::fabs(b) +
                       0.5 * opts.x_tolerance;
    const double m = 0.5 * (c - b);
    if (std::fabs(m) <= tol || fb == 0.0 ||
        std::fabs(fb) <= opts.f_tolerance) {
      return RootResult{b, fb, iter, true};
    }
    if (std::fabs(e) < tol || std::fabs(fa) <= std::fabs(fb)) {
      d = m;
      e = m;
    } else {
      double p, q;
      const double s = fb / fa;
      if (a == c) {
        // Secant step.
        p = 2.0 * m * s;
        q = 1.0 - s;
      } else {
        // Inverse quadratic interpolation.
        const double qa = fa / fc;
        const double r = fb / fc;
        p = s * (2.0 * m * qa * (qa - r) - (b - a) * (r - 1.0));
        q = (qa - 1.0) * (r - 1.0) * (s - 1.0);
      }
      if (p > 0.0) q = -q;
      p = std::fabs(p);
      if (2.0 * p < std::min(3.0 * m * q - std::fabs(tol * q), std::fabs(e * q))) {
        e = d;
        d = p / q;
      } else {
        d = m;
        e = m;
      }
    }
    a = b;
    fa = fb;
    b += (std::fabs(d) > tol) ? d : (m > 0.0 ? tol : -tol);
    fb = f(b);
    if ((fb > 0.0) == (fc > 0.0)) {
      c = a;
      fc = fa;
      d = b - a;
      e = d;
    }
  }
  return RootResult{b, fb, opts.max_iterations, false};
}

std::optional<std::pair<double, double>> bracket_root(
    const std::function<double(double)>& f, double a, double b, double grow,
    int max_expansions) {
  if (a == b) return std::nullopt;
  double fa = f(a);
  double fb = f(b);
  for (int i = 0; i < max_expansions; ++i) {
    if (fa * fb <= 0.0) return std::make_pair(a, b);
    if (std::fabs(fa) < std::fabs(fb)) {
      a += grow * (a - b);
      fa = f(a);
    } else {
      b += grow * (b - a);
      fb = f(b);
    }
  }
  return std::nullopt;
}

std::optional<RootResult> bisect(const std::function<double(double)>& f, double a,
                                 double b, const RootOptions& opts) {
  double fa = f(a);
  double fb = f(b);
  if (std::fabs(fa) <= opts.f_tolerance) return RootResult{a, fa, 0, true};
  if (std::fabs(fb) <= opts.f_tolerance) return RootResult{b, fb, 0, true};
  if (fa * fb > 0.0) return std::nullopt;
  for (int iter = 1; iter <= opts.max_iterations; ++iter) {
    const double mid = 0.5 * (a + b);
    const double fm = f(mid);
    if (std::fabs(b - a) <= opts.x_tolerance || fm == 0.0) {
      return RootResult{mid, fm, iter, true};
    }
    if ((fm > 0.0) == (fa > 0.0)) {
      a = mid;
      fa = fm;
    } else {
      b = mid;
    }
  }
  return RootResult{0.5 * (a + b), f(0.5 * (a + b)), opts.max_iterations, false};
}

}  // namespace nvsram::util
