// Scalar root finding (Brent) and bracketing helpers.
//
// Used by the BET solver to verify the analytic break-even intersection on
// the simulated E_cyc(t_SD) curves, and by device calibration code.
#pragma once

#include <functional>
#include <optional>

namespace nvsram::util {

struct RootOptions {
  double x_tolerance = 1e-12;   // absolute tolerance on x
  double f_tolerance = 0.0;     // |f| below which we accept immediately
  int max_iterations = 200;
};

struct RootResult {
  double x = 0.0;
  double f = 0.0;
  int iterations = 0;
  bool converged = false;
};

// Brent's method on [a, b].  Requires f(a) and f(b) with opposite signs;
// returns nullopt if the bracket is invalid.
std::optional<RootResult> brent(const std::function<double(double)>& f, double a,
                                double b, const RootOptions& opts = {});

// Expands [a, b] geometrically (factor `grow`) until f changes sign or
// `max_expansions` is hit.  Returns the bracketing pair if found.
std::optional<std::pair<double, double>> bracket_root(
    const std::function<double(double)>& f, double a, double b,
    double grow = 1.6, int max_expansions = 60);

// Bisection fallback (always converges on a valid bracket); used in tests to
// cross-check Brent.
std::optional<RootResult> bisect(const std::function<double(double)>& f, double a,
                                 double b, const RootOptions& opts = {});

}  // namespace nvsram::util
