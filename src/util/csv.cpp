#include "util/csv.h"

#include <stdexcept>

#include "util/units.h"

namespace nvsram::util {

CsvWriter::CsvWriter(std::string path, std::vector<std::string> columns)
    : path_(std::move(path)), columns_(std::move(columns)) {}

CsvWriter::~CsvWriter() = default;

void CsvWriter::ensure_open() {
  if (opened_) return;
  out_.open(path_);
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path_);
  }
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (i) out_ << ',';
    out_ << columns_[i];
  }
  out_ << '\n';
  opened_ = true;
}

void CsvWriter::row(const std::vector<double>& values) {
  if (values.size() != columns_.size()) {
    throw std::runtime_error("CsvWriter: row width mismatch for " + path_);
  }
  ensure_open();
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out_ << ',';
    out_ << sci_format(values[i], 6);
  }
  out_ << '\n';
  ++rows_;
}

void CsvWriter::row(std::initializer_list<double> values) {
  row(std::vector<double>(values));
}

void CsvWriter::text_row(const std::vector<std::string>& values) {
  if (values.size() != columns_.size()) {
    throw std::runtime_error("CsvWriter: row width mismatch for " + path_);
  }
  ensure_open();
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out_ << ',';
    out_ << values[i];
  }
  out_ << '\n';
  ++rows_;
}

void CsvWriter::flush() {
  if (opened_) out_.flush();
}

}  // namespace nvsram::util
