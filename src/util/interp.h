// Piecewise-linear interpolation over sampled curves.
//
// Used for PWL source evaluation and for extracting crossings/intersections
// from simulated sweeps (e.g. the BET from two E_cyc(t_SD) series).
#pragma once

#include <optional>
#include <vector>

namespace nvsram::util {

// A monotone-x piecewise-linear curve.
class PiecewiseLinear {
 public:
  PiecewiseLinear() = default;
  // `xs` must be strictly increasing and the same length as `ys`
  // (throws std::invalid_argument otherwise).
  PiecewiseLinear(std::vector<double> xs, std::vector<double> ys);

  // Evaluate with clamp-to-end extrapolation.
  double operator()(double x) const;

  // Evaluate with linear extrapolation beyond the ends.
  double extrapolate(double x) const;

  // First x in [x_begin, x_end] where the curve crosses `level`
  // (linear interpolation inside segments).
  std::optional<double> first_crossing(double level) const;

  // First x where (*this - other) changes sign; both curves are evaluated on
  // the union of their knots.
  std::optional<double> first_intersection(const PiecewiseLinear& other) const;

  std::size_t size() const { return xs_.size(); }
  bool empty() const { return xs_.empty(); }
  const std::vector<double>& xs() const { return xs_; }
  const std::vector<double>& ys() const { return ys_; }

 private:
  std::vector<double> xs_;
  std::vector<double> ys_;
};

// Trapezoidal integral of samples (xs strictly increasing).
double trapezoid_integral(const std::vector<double>& xs,
                          const std::vector<double>& ys);

}  // namespace nvsram::util
