// Tiny leveled logger.  Defaults to warnings-and-above on stderr so the
// bench tables on stdout stay clean; tests can raise verbosity.
#pragma once

#include <sstream>
#include <string>

namespace nvsram::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Global threshold (process-wide; atomic, so parallel sweep workers can log
// while the main thread reads/sets the level — each analysis itself remains
// single-threaded).
void set_log_level(LogLevel level);
LogLevel log_level();

void log_message(LogLevel level, const std::string& msg);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::kDebug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::kInfo); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::kWarn); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::kError); }

}  // namespace nvsram::util
