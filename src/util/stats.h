// Small online statistics helpers used by benches and property tests.
#pragma once

#include <cstddef>
#include <vector>

namespace nvsram::util {

// Welford online mean/variance accumulator.
class RunningStats {
 public:
  void add(double x);
  void reset();

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const;   // sample variance (n-1); 0 for n < 2
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Relative error |a-b| / max(|a|,|b|,floor).
double relative_error(double a, double b, double floor = 1e-30);

// True if the sequence is non-decreasing within tolerance `slack`
// (relative to the local magnitude).
bool is_monotone_nondecreasing(const std::vector<double>& v, double slack = 0.0);
bool is_monotone_nonincreasing(const std::vector<double>& v, double slack = 0.0);

// Geometric spacing helper: n points from lo to hi inclusive (lo, hi > 0).
std::vector<double> logspace(double lo, double hi, std::size_t n);
// Linear spacing helper: n points from lo to hi inclusive.
std::vector<double> linspace(double lo, double hi, std::size_t n);

}  // namespace nvsram::util
